"""Bidirectional channels between two hosts.

A :class:`Channel` is a pair of opposing :class:`~repro.netsim.link.Link`
objects plus two :class:`ChannelEnd` endpoints.  Protocol agents hold an
endpoint and use:

``send(message)``
    returns a SimEvent succeeding at delivery time (fails on link-down/loss),
``recv()``
    returns a SimEvent succeeding with the next inbound message (FIFO),
``recv_kind(kind)``
    like ``recv`` but waits for a specific message kind, buffering others,
``set_handler(fn)``
    push-mode delivery for server-style reactive agents.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.sim import SimEvent, Simulator
from repro.netsim.link import Link, NetemProfile
from repro.netsim.message import Message


class ReceiveTimeout(RuntimeError):
    """Failure value for ``recv`` calls that exceeded their deadline."""


class ChannelEnd:
    """One side of a bidirectional channel."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.peer: Optional["ChannelEnd"] = None
        self._outgoing: Optional[Link] = None
        self._inbox: Deque[Message] = deque()
        self._recv_waiters: Deque[SimEvent] = deque()
        self._kind_waiters: Dict[str, Deque[SimEvent]] = {}
        self._handler: Optional[Callable[[Message], None]] = None
        self.received: List[Message] = []
        self._sent_counter = sim.metrics.counter(
            "net_messages_sent_total", help="messages handed to the link",
            endpoint=name,
        )
        self._received_counter = sim.metrics.counter(
            "net_messages_received_total", help="messages delivered to this end",
            endpoint=name,
        )
        self._timeout_counter = sim.metrics.counter(
            "net_recv_timeouts_total", help="recv waits that hit their deadline",
            endpoint=name,
        )

    # -- wiring (done by Channel) ------------------------------------------
    def _attach(self, outgoing: Link, peer: "ChannelEnd") -> None:
        self._outgoing = outgoing
        self.peer = peer

    # -- sending -------------------------------------------------------------
    def send(
        self,
        kind: str,
        payload: Any = None,
        size_bytes: Optional[int] = None,
        **headers: Any,
    ) -> SimEvent:
        """Send a message to the peer; returns the delivery event."""
        if self._outgoing is None or self.peer is None:
            raise RuntimeError(f"endpoint {self.name} is not attached to a channel")
        message = Message(
            kind=kind,
            payload=payload,
            sender=self.name,
            recipient=self.peer.name,
            size_bytes=size_bytes,
            headers=dict(headers),
        )
        self._sent_counter.inc()
        return self._outgoing.transmit(message, self.peer._deliver)

    def send_message(self, message: Message) -> SimEvent:
        """Send a pre-built message (used by protocol relays)."""
        if self._outgoing is None or self.peer is None:
            raise RuntimeError(f"endpoint {self.name} is not attached to a channel")
        message.sender = self.name
        message.recipient = self.peer.name
        self._sent_counter.inc()
        return self._outgoing.transmit(message, self.peer._deliver)

    # -- receiving -------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        self.received.append(message)
        self._received_counter.inc()
        if self._handler is not None:
            self._handler(message)
            return
        waiters = self._kind_waiters.get(message.kind)
        if waiters:
            waiters.popleft().succeed(message)
            return
        if self._recv_waiters:
            self._recv_waiters.popleft().succeed(message)
            return
        self._inbox.append(message)

    def recv(self, timeout: Optional[float] = None) -> SimEvent:
        """Wait for the next inbound message (any kind)."""
        event = self.sim.event(label=f"recv:{self.name}")
        if self._inbox:
            event.succeed(self._inbox.popleft())
            return event
        self._recv_waiters.append(event)
        self._arm_timeout(event, timeout, "recv")
        return event

    def recv_kind(self, kind: str, timeout: Optional[float] = None) -> SimEvent:
        """Wait for the next inbound message of a given kind.

        Messages of other kinds stay buffered for plain ``recv`` callers.
        """
        event = self.sim.event(label=f"recv:{self.name}:{kind}")
        for index, message in enumerate(self._inbox):
            if message.kind == kind:
                del self._inbox[index]
                event.succeed(message)
                return event
        self._kind_waiters.setdefault(kind, deque()).append(event)
        self._arm_timeout(event, timeout, kind)
        return event

    def try_recv(self) -> Optional[Message]:
        """Non-blocking receive."""
        if self._inbox:
            return self._inbox.popleft()
        return None

    def set_handler(self, handler: Optional[Callable[[Message], None]]) -> None:
        """Switch to push-mode delivery; drains any buffered messages now."""
        self._handler = handler
        if handler is not None:
            while self._inbox:
                handler(self._inbox.popleft())

    def _arm_timeout(
        self, event: SimEvent, timeout: Optional[float], what: str
    ) -> None:
        if timeout is None:
            return

        def expire() -> None:
            if not event.triggered:
                self._discard_waiter(event)
                self._timeout_counter.inc()
                event.fail(
                    ReceiveTimeout(f"{self.name}: no {what} within {timeout}s")
                )

        self.sim.schedule(timeout, expire, label=f"recv-timeout:{self.name}")

    def cancel_wait(self, event: SimEvent) -> None:
        """Withdraw an untriggered recv event so it cannot eat a message.

        Needed when racing two ``recv_kind`` waits (e.g. RESULT vs ERROR):
        once one wins, the loser must be cancelled or it would silently
        consume the next message of its kind.
        """
        if not event.triggered:
            self._discard_waiter(event)

    def _discard_waiter(self, event: SimEvent) -> None:
        try:
            self._recv_waiters.remove(event)
        except ValueError:
            pass
        for waiters in self._kind_waiters.values():
            try:
                waiters.remove(event)
            except ValueError:
                pass

    @property
    def pending(self) -> int:
        return len(self._inbox)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChannelEnd({self.name}, pending={len(self._inbox)})"


class Channel:
    """A bidirectional channel: two links and two endpoints."""

    def __init__(
        self,
        sim: Simulator,
        name_a: str,
        name_b: str,
        profile: NetemProfile,
        profile_back: Optional[NetemProfile] = None,
    ):
        self.sim = sim
        self.link_ab = Link(sim, profile, name=f"{name_a}->{name_b}")
        self.link_ba = Link(sim, profile_back or profile, name=f"{name_b}->{name_a}")
        self.end_a = ChannelEnd(sim, name_a)
        self.end_b = ChannelEnd(sim, name_b)
        self.end_a._attach(self.link_ab, self.end_b)
        self.end_b._attach(self.link_ba, self.end_a)

    def ends(self) -> tuple:
        return self.end_a, self.end_b

    def set_profile(self, profile: NetemProfile) -> None:
        """Reshape both directions (like re-running ``tc``)."""
        self.link_ab.set_profile(profile)
        self.link_ba.set_profile(profile)

    def go_down(self) -> None:
        self.link_ab.go_down()
        self.link_ba.go_down()

    def go_up(self) -> None:
        self.link_ab.go_up()
        self.link_ba.go_up()
