"""Typed network messages and payload sizing.

Transmission time in the simulator is driven entirely by message size, so
every payload must expose an explicit byte count.  Payload objects from other
subsystems (snapshots, model files, VM overlays) implement a ``size_bytes``
attribute or property; raw ``bytes``/``str`` payloads are sized directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_message_ids = itertools.count(1)

# Fixed per-message framing overhead (headers etc.).  Small but nonzero so
# that zero-byte control messages (e.g. ACK) still take time on the wire.
FRAME_OVERHEAD_BYTES = 256


def payload_size(payload: Any) -> int:
    """Best-effort byte size of a payload object.

    Accepts ``None`` (0 bytes), ``bytes``/``bytearray``, ``str`` (UTF-8),
    numbers (8 bytes), objects exposing ``size_bytes`` (attribute, property
    or zero-arg method), and lists/tuples/dicts of the above.
    """
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    size_attr = getattr(payload, "size_bytes", None)
    if size_attr is not None:
        return int(size_attr() if callable(size_attr) else size_attr)
    if isinstance(payload, (list, tuple, set)):
        return sum(payload_size(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_size(key) + payload_size(value) for key, value in payload.items()
        )
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


@dataclass
class Message:
    """A unit of transfer between two hosts.

    ``size_bytes`` may be given explicitly (e.g. a compressed overlay whose
    on-the-wire size differs from its logical content); otherwise it is
    computed from the payload plus framing overhead.
    """

    kind: str
    payload: Any = None
    sender: str = ""
    recipient: str = ""
    size_bytes: Optional[int] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: Optional[float] = None
    delivered_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes is None:
            self.size_bytes = payload_size(self.payload) + FRAME_OVERHEAD_BYTES
        if self.size_bytes < 0:
            raise ValueError(f"message size cannot be negative: {self.size_bytes}")

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6

    def reply_kind(self) -> str:
        """Conventional reply kind, e.g. ``MODEL_FILES`` -> ``MODEL_FILES_ACK``."""
        return f"{self.kind}_ACK"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.kind} {self.sender}->{self.recipient} "
            f"{self.size_bytes}B)"
        )
