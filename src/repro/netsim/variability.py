"""Time-varying network conditions.

The paper's partition optimizer consumes "the runtime network status" —
which only matters because that status *changes* (the client moves, the
AP gets crowded).  :class:`BandwidthSchedule` scripts shaping changes onto
the virtual clock (like re-running ``tc`` at given times), and
:func:`random_walk_schedule` generates plausible Wi-Fi traces: a bounded
multiplicative random walk around a base rate with occasional deep fades.

Semantics note: a transfer that already started keeps the rate it started
with (the bits were scheduled onto the wire); only future transmissions
see the new profile — the same approximation ``tc`` reconfiguration has
on in-flight qdisc contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.netsim.link import NetemProfile
from repro.sim import SeededRng, Simulator


@dataclass(frozen=True)
class BandwidthSchedule:
    """A piecewise-constant shaping timeline."""

    steps: Tuple[Tuple[float, NetemProfile], ...]

    def __post_init__(self) -> None:
        times = [time for time, _profile in self.steps]
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        if times != sorted(times):
            raise ValueError("schedule steps must be time-ordered")
        if times[0] < 0:
            raise ValueError("schedule cannot start before t=0")

    def profile_at(self, when: float) -> NetemProfile:
        """The profile in force at virtual time ``when``."""
        current = self.steps[0][1]
        for time, profile in self.steps:
            if time <= when:
                current = profile
            else:
                break
        return current

    @property
    def duration(self) -> float:
        return self.steps[-1][0]

    def apply(self, sim: Simulator, reshape) -> None:
        """Schedule ``reshape(profile)`` calls at each step time.

        ``reshape`` is typically ``channel.set_profile`` or a
        ``topology.set_profile`` partial.
        """
        for time, profile in self.steps:
            if time <= sim.now:
                reshape(profile)
            else:
                sim.schedule_at(
                    time, reshape, profile, label=f"reshape@{time:.1f}"
                )


def random_walk_schedule(
    rng: SeededRng,
    duration_s: float = 120.0,
    step_s: float = 5.0,
    base_mbps: float = 30.0,
    min_mbps: float = 1.0,
    max_mbps: float = 60.0,
    fade_probability: float = 0.1,
    fade_mbps: float = 2.0,
) -> BandwidthSchedule:
    """A plausible mobile Wi-Fi trace: random walk + occasional deep fades."""
    steps: List[Tuple[float, NetemProfile]] = []
    mbps = base_mbps
    time = 0.0
    while time <= duration_s:
        if rng.chance(fade_probability):
            effective = fade_mbps
        else:
            mbps = min(max_mbps, max(min_mbps, mbps * rng.uniform(0.7, 1.4)))
            effective = mbps
        steps.append(
            (time, NetemProfile(bandwidth_bps=effective * 1e6, latency_s=0.001))
        )
        time += step_s
    return BandwidthSchedule(steps=tuple(steps))
