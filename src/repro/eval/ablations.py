"""Ablation studies beyond the paper's figures.

These exercise the design choices DESIGN.md calls out:

* :func:`bandwidth_sweep` — where does offloading stop paying?  (The paper
  fixes 30 Mbps; we sweep it and find the client/offload crossover.)
* :func:`partition_adaptivity` — the optimizer should move the split point
  deeper into the network as bandwidth drops (features must shrink before
  crossing a slow link).
* :func:`decision_study` — the before-ACK local-vs-offload policy
  (§IV.A's advice) versus measured ground truth.
* :func:`snapshot_optimization_study` — live-state elimination and the
  data-URL image encoding, quantified on snapshot bytes.
* :func:`gpu_server_study` — the paper's forward-looking remark that WebGL
  gives ~80x: with a GPU server, transfer dominates and partial inference
  at deeper points loses its appeal.
* :func:`energy_study` — client energy for local vs offloaded execution
  (the MAUI-style motivation, computed from the same timelines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.decisions import Decision, OffloadPolicy
from repro.core.snapshot import CaptureOptions
from repro.devices.energy import EnergyModel
from repro.devices.predictor import fit_predictor_for
from repro.eval import calibration
from repro.eval.scenarios import Testbed, build_paper_model, paper_input_for
from repro.nn.cost import network_costs
from repro.nn.tensor import text_serialized_bytes


# -- 1. bandwidth sweep ---------------------------------------------------------

@dataclass
class BandwidthPoint:
    bandwidth_mbps: float
    offload_seconds: float
    client_seconds: float

    @property
    def offload_wins(self) -> bool:
        return self.offload_seconds < self.client_seconds


def bandwidth_sweep(
    model_name: str = "googlenet",
    bandwidths_mbps: Sequence[float] = (1, 2, 4, 8, 15, 30, 60, 120),
) -> List[BandwidthPoint]:
    """Offload-after-ACK vs client-only across link speeds."""
    client_seconds = Testbed().run_client_only(model_name).total_seconds
    points = []
    for mbps in bandwidths_mbps:
        result = Testbed(bandwidth_bps=mbps * 1e6).run_offload(
            model_name, wait_for_ack=True
        )
        points.append(
            BandwidthPoint(
                bandwidth_mbps=mbps,
                offload_seconds=result.total_seconds,
                client_seconds=client_seconds,
            )
        )
    return points


# -- 2. partition adaptivity ----------------------------------------------------

def partition_adaptivity(
    model_name: str = "googlenet",
    bandwidths_mbps: Sequence[float] = (1, 4, 30, 120),
) -> Dict[float, str]:
    """The optimizer's chosen denaturing point per bandwidth."""
    from repro.eval.fig8 import make_optimizer

    model = build_paper_model(model_name)
    optimizer = make_optimizer(model_name)
    choices = {}
    for mbps in bandwidths_mbps:
        link = Testbed(bandwidth_bps=mbps * 1e6).profile
        choice = optimizer.choose(model.network, link, denature=True)
        choices[mbps] = choice.point.label
    return choices


# -- 3. decision policy ------------------------------------------------------------

@dataclass
class DecisionOutcome:
    model: str
    decision: Decision
    measured_local_seconds: float
    measured_offload_seconds: float

    @property
    def measured_best(self) -> str:
        return (
            "local"
            if self.measured_local_seconds <= self.measured_offload_seconds
            else "offload"
        )

    @property
    def policy_agrees(self) -> bool:
        return self.decision.action == self.measured_best


def decision_study(models: Sequence[str] = ("googlenet", "agenet")) -> List[DecisionOutcome]:
    """Before-ACK policy decisions vs measured ground truth."""
    outcomes = []
    for model_name in models:
        model = build_paper_model(model_name)
        costs = network_costs(model.network)
        testbed = Testbed()
        policy = OffloadPolicy(
            fit_predictor_for(testbed.client_profile, costs, noise=0.02),
            fit_predictor_for(testbed.server_profile, costs, noise=0.02),
            testbed.client_profile,
            testbed.server_profile,
        )
        input_bytes = text_serialized_bytes(model.network.input_shape)
        decision = policy.decide(
            costs,
            testbed.profile,
            pending_model_bytes=model.total_bytes,
            input_bytes=input_bytes,
        )
        local = Testbed().run_client_only(model_name).total_seconds
        offload = Testbed().run_offload(model_name, wait_for_ack=False).total_seconds
        outcomes.append(
            DecisionOutcome(
                model=model_name,
                decision=decision,
                measured_local_seconds=local,
                measured_offload_seconds=offload,
            )
        )
    return outcomes


# -- 4. snapshot optimizations -----------------------------------------------------

@dataclass
class SnapshotSizes:
    """Snapshot bytes under different capture policies."""

    model: str
    live_only_bytes: int
    conservative_bytes: int
    data_url_bytes: int

    @property
    def live_state_saving(self) -> float:
        """Fraction saved by live-state elimination."""
        if self.conservative_bytes == 0:
            return 0.0
        return 1.0 - self.live_only_bytes / self.conservative_bytes


def snapshot_optimization_study(model_name: str = "googlenet") -> SnapshotSizes:
    """Measure capture-policy effects on the offloading snapshot."""
    from repro.core.snapshot import capture_snapshot
    from repro.web.app import make_inference_app
    from repro.web.events import Event
    from repro.web.runtime import WebRuntime
    from repro.web.values import ImageData

    from repro.sim import SeededRng
    from repro.web.values import JSArray, TypedArray

    model = build_paper_model(model_name)
    event = Event("click", "infer_btn")
    rng = SeededRng(7, "ablation/history")

    def snapshot_with(options: CaptureOptions, as_data_url: bool) -> int:
        runtime = WebRuntime("study")
        runtime.load_app(make_inference_app(model))
        pixels = paper_input_for(model_name)
        if as_data_url:
            pixels = ImageData(pixels.data, encoded_bytes=pixels.size + 1024)
        runtime.globals["pending_pixels"] = pixels
        # Realistic dead state the pending handler never touches: previous
        # photos kept by the app.  Live-state elimination should drop them.
        shape = model.network.input_shape
        runtime.globals["photo_history"] = JSArray(
            [TypedArray(rng.uniform_array(shape, 0, 255)) for _ in range(2)]
        )
        runtime.dispatch("click", "load_btn")
        return capture_snapshot(runtime, event, options).size_bytes

    return SnapshotSizes(
        model=model_name,
        live_only_bytes=snapshot_with(
            CaptureOptions(live_only=True, include_canvas_pixels=True), False
        ),
        conservative_bytes=snapshot_with(
            CaptureOptions(live_only=False, include_canvas_pixels=True), False
        ),
        data_url_bytes=snapshot_with(
            CaptureOptions(live_only=True, include_canvas_pixels=True), True
        ),
    )


# -- 5. GPU server -----------------------------------------------------------------

@dataclass
class GpuStudy:
    model: str
    cpu_offload_seconds: float
    gpu_offload_seconds: float
    gpu_server_exec_seconds: float


def gpu_server_study(model_name: str = "googlenet") -> GpuStudy:
    """The ~80x WebGL server of the paper's outlook (§IV.A)."""
    cpu = Testbed().run_offload(model_name, wait_for_ack=True)
    gpu = Testbed(server_speedup=80.0).run_offload(model_name, wait_for_ack=True)
    return GpuStudy(
        model=model_name,
        cpu_offload_seconds=cpu.total_seconds,
        gpu_offload_seconds=gpu.total_seconds,
        gpu_server_exec_seconds=gpu.phases.server_exec,
    )


# -- 6. session cache (the paper's §VI future work) ---------------------------------

@dataclass
class SessionCacheStudy:
    """Repeated offloading with and without server-side session reuse."""

    model: str
    first_offload_seconds: float
    repeat_without_cache_seconds: float
    repeat_with_cache_seconds: float
    full_snapshot_bytes: int
    delta_snapshot_bytes: int

    @property
    def bytes_saving(self) -> float:
        if self.full_snapshot_bytes == 0:
            return 0.0
        return 1.0 - self.delta_snapshot_bytes / self.full_snapshot_bytes


def session_cache_study(model_name: str = "googlenet") -> SessionCacheStudy:
    """Quantify the future-work reuse of state left at the server."""
    without = Testbed().run_offload_repeated(
        model_name, repetitions=2, use_session_cache=False
    )
    with_cache = Testbed().run_offload_repeated(
        model_name, repetitions=2, use_session_cache=True
    )
    return SessionCacheStudy(
        model=model_name,
        first_offload_seconds=with_cache[0].total_seconds,
        repeat_without_cache_seconds=without[1].total_seconds,
        repeat_with_cache_seconds=with_cache[1].total_seconds,
        full_snapshot_bytes=without[1].snapshot.size_bytes,
        delta_snapshot_bytes=with_cache[1].snapshot.size_bytes,
    )


# -- 7. feature quantization ---------------------------------------------------------

def quantization_study(
    model_name: str = "agenet",
    point_label: str = "1st_pool",
    bit_widths: Sequence[int] = (16, 8, 4, 2),
    num_inputs: int = 10,
    seed: int = 0,
):
    """Accuracy/size trade-off of quantizing the transmitted feature.

    Real measurement: the rear network actually runs on dequantized
    features and its labels are compared against the unsplit model's.
    """
    from repro.nn.quantize import measure_quantization_impact
    from repro.sim import SeededRng

    model = build_paper_model(model_name)
    rng = SeededRng(seed, f"quant/{model_name}")
    shape = model.network.input_shape
    inputs = [rng.uniform_array(shape, 0, 255) for _ in range(num_inputs)]
    return [
        measure_quantization_impact(model, point_label, bits, inputs)
        for bits in bit_widths
    ]


# -- 8. model-size scaling -------------------------------------------------------------

@dataclass
class ModelScalePoint:
    """One model's pre-sending economics."""

    model: str
    model_mb: float
    presend_seconds: float  # time until the server ACKs the upload
    client_seconds: float
    before_ack_seconds: float
    policy_action: str

    @property
    def before_ack_pays_off(self) -> bool:
        return self.before_ack_seconds < self.client_seconds


def model_size_scaling_study(
    models: Sequence[str] = ("googlenet", "agenet", "alexnet"),
) -> List[ModelScalePoint]:
    """How model size drives the pre-send / offload-now / local trade-off.

    AlexNet (233 MB) extends the paper's 27-44 MB range by almost an order
    of magnitude: uploading it takes ~a minute, so offloading before the
    ACK must lose badly to local execution and the decision policy must say
    so.
    """
    from repro.core.decisions import OffloadPolicy
    from repro.devices.predictor import fit_predictor_for

    points = []
    for model_name in models:
        model = build_paper_model(model_name)
        costs = network_costs(model.network)
        testbed = Testbed()
        policy = OffloadPolicy(
            fit_predictor_for(testbed.client_profile, costs, noise=0.02),
            fit_predictor_for(testbed.server_profile, costs, noise=0.02),
            testbed.client_profile,
            testbed.server_profile,
        )
        decision = policy.decide(
            costs,
            testbed.profile,
            pending_model_bytes=model.total_bytes,
            input_bytes=text_serialized_bytes(model.network.input_shape),
        )
        # Measured pre-send duration: time until the ACK arrives.
        presend_bed = Testbed()
        from repro.core.presend import PresendManager

        manager = PresendManager(
            presend_bed.sim, presend_bed.topology.channel.end_a, [model]
        )
        manager.start()
        ack = manager.ack_event(model.model_id)
        presend_bed.sim.run_until(lambda: ack.triggered)
        presend_seconds = ack.value

        client_seconds = Testbed().run_client_only(model_name).total_seconds
        before_ack = Testbed().run_offload(model_name, wait_for_ack=False)
        points.append(
            ModelScalePoint(
                model=model_name,
                model_mb=model.total_bytes / 1e6,
                presend_seconds=presend_seconds,
                client_seconds=client_seconds,
                before_ack_seconds=before_ack.total_seconds,
                policy_action=decision.action,
            )
        )
    return points


# -- 9. network variability -------------------------------------------------------------

@dataclass
class VariabilityStudy:
    """Adaptive vs fixed partitioning under a varying network."""

    model: str
    bandwidths_mbps: List[float]
    fixed_total_seconds: float
    adaptive_total_seconds: float
    adaptive_points: List[str]

    @property
    def adaptive_wins(self) -> bool:
        return self.adaptive_total_seconds <= self.fixed_total_seconds + 1e-9


def variability_study(
    model_name: str = "googlenet",
    seed: int = 0,
    num_requests: int = 6,
    fixed_point: str = calibration.FIG6_PARTIAL_POINT,
    fade_mbps: float = 0.8,
) -> VariabilityStudy:
    """Re-optimize the split per request as the link quality wanders.

    Each inference sees the bandwidth a random-walk Wi-Fi trace produces
    at that moment.  The *fixed* strategy always offloads at 1st_pool (the
    paper's static choice); the *adaptive* strategy asks the partition
    optimizer with the current network status first.
    """
    from repro.eval.fig8 import make_optimizer
    from repro.netsim.variability import random_walk_schedule
    from repro.sim import SeededRng

    schedule = random_walk_schedule(
        SeededRng(seed, f"trace/{model_name}"),
        duration_s=num_requests * 10.0,
        min_mbps=fade_mbps,
        fade_mbps=fade_mbps,
        fade_probability=0.25,
    )
    model = build_paper_model(model_name)
    optimizer = make_optimizer(model_name)
    bandwidths = []
    fixed_total = 0.0
    adaptive_total = 0.0
    adaptive_points = []
    for index in range(num_requests):
        profile = schedule.profile_at(index * 10.0 + 1.0)
        mbps = profile.bandwidth_bps / 1e6
        bandwidths.append(mbps)
        fixed_total += (
            Testbed(bandwidth_bps=profile.bandwidth_bps)
            .run_offload_partial(model_name, fixed_point)
            .total_seconds
        )
        choice = optimizer.choose(model.network, profile, denature=True)
        adaptive_points.append(choice.point.label)
        adaptive_total += (
            Testbed(bandwidth_bps=profile.bandwidth_bps)
            .run_offload_partial(model_name, choice.point.label)
            .total_seconds
        )
    return VariabilityStudy(
        model=model_name,
        bandwidths_mbps=bandwidths,
        fixed_total_seconds=fixed_total,
        adaptive_total_seconds=adaptive_total,
        adaptive_points=adaptive_points,
    )


# -- 10. baseline comparison -------------------------------------------------------------

@dataclass
class BaselineRow:
    """One offloading approach's latency + capability profile."""

    approach: str
    first_use_seconds: float  # includes any setup on a fresh server
    steady_state_seconds: float
    any_app: bool  # can a generic server run arbitrary apps?
    stateless_handover: bool  # works on a new server without setup?


def baseline_comparison_study(model_name: str = "googlenet") -> List[BaselineRow]:
    """Snapshot offloading vs specialized service vs MAUI-style offloading.

    All three run on identical hardware and links; latencies are measured,
    capabilities follow from each approach's construction (and are
    exercised by tests: the specialized server refuses foreign apps, the
    MAUI server refuses uninstalled ones).
    """
    from repro.core.baselines import (
        MauiServer,
        SpecializedEdgeService,
        maui_exec,
        maui_install,
        specialized_request,
    )
    from repro.devices import Device, edge_server_x86

    model = build_paper_model(model_name)
    pixels = paper_input_for(model_name).data

    # Snapshot-based offloading (measured end to end).
    snapshot_first = Testbed().run_offload(model_name, wait_for_ack=False)
    snapshot_steady = Testbed().run_offload(model_name, wait_for_ack=True)

    # Specialized service: pre-deployed for exactly this task.
    testbed = Testbed()
    service = SpecializedEdgeService(
        testbed.sim,
        Device(testbed.sim, edge_server_x86()),
        model,
        service=model_name,
    )
    client_end, server_end = testbed.topology.attach("edge-1")
    service.serve(server_end)
    times = []
    for _ in range(2):
        process = testbed.sim.spawn(
            specialized_request(client_end, model_name, pixels)
        )
        testbed.sim.run_until(lambda: process.triggered)
        times.append(process.value[1])
    specialized_first, specialized_steady = times

    # MAUI-style: install the executable+model first, then execute remotely.
    testbed = Testbed()
    maui = MauiServer(testbed.sim, Device(testbed.sim, edge_server_x86()))
    client_end, server_end = testbed.topology.attach("edge-1")
    maui.serve(server_end)
    install = testbed.sim.spawn(maui_install(client_end, model_name, model))
    testbed.sim.run_until(lambda: install.triggered)
    first_exec = testbed.sim.spawn(maui_exec(client_end, model_name, pixels))
    testbed.sim.run_until(lambda: first_exec.triggered)
    second_exec = testbed.sim.spawn(maui_exec(client_end, model_name, pixels))
    testbed.sim.run_until(lambda: second_exec.triggered)

    return [
        BaselineRow(
            approach="snapshot offloading",
            first_use_seconds=snapshot_first.total_seconds,
            steady_state_seconds=snapshot_steady.total_seconds,
            any_app=True,
            stateless_handover=True,
        ),
        BaselineRow(
            approach="specialized service",
            first_use_seconds=specialized_first,
            steady_state_seconds=specialized_steady,
            any_app=False,
            stateless_handover=False,
        ),
        BaselineRow(
            approach="MAUI-style (pre-installed app)",
            first_use_seconds=install.value + first_exec.value[1],
            steady_state_seconds=second_exec.value[1],
            any_app=False,
            stateless_handover=False,
        ),
    ]


# -- 11. quantized feature codec in the partition optimizer ---------------------------

@dataclass
class CodecPartitionStudy:
    """Optimizer behaviour when the feature codec changes."""

    model: str
    bandwidth_mbps: float
    text_point: str
    text_predicted_seconds: float
    quantized_point: str
    quantized_predicted_seconds: float

    @property
    def quantization_helps(self) -> bool:
        return self.quantized_predicted_seconds <= self.text_predicted_seconds + 1e-9


def codec_partition_study(
    model_name: str = "googlenet",
    bandwidth_mbps: float = 4.0,
    bits: int = 8,
) -> CodecPartitionStudy:
    """Re-run the partition optimizer with an 8-bit feature codec.

    Quantization shrinks every candidate's transfer cost, which can move
    the optimal split point and always lowers the predicted total.
    """
    from repro.eval.fig8 import make_optimizer

    model = build_paper_model(model_name)
    link = Testbed(bandwidth_bps=bandwidth_mbps * 1e6).profile
    text_optimizer = make_optimizer(model_name)
    text_choice = text_optimizer.choose(model.network, link, denature=True)

    # Priced at the genuinely bit-packed wire size (packed_feature_bytes,
    # via the optimizer's quantize_bits hook).
    quantized_optimizer = make_optimizer(model_name, quantize_bits=bits)
    quantized_choice = quantized_optimizer.choose(model.network, link, denature=True)
    return CodecPartitionStudy(
        model=model_name,
        bandwidth_mbps=bandwidth_mbps,
        text_point=text_choice.point.label,
        text_predicted_seconds=text_choice.best.total_seconds,
        quantized_point=quantized_choice.point.label,
        quantized_predicted_seconds=quantized_choice.best.total_seconds,
    )


# -- 12. edge vs datacenter cloud ------------------------------------------------------

@dataclass
class LocationRow:
    """Offloading to a given server location/class."""

    location: str
    bandwidth_mbps: float
    one_way_latency_ms: float
    total_seconds: float
    migration_seconds: float
    server_exec_seconds: float


def edge_vs_cloud_study(model_name: str = "googlenet") -> List[LocationRow]:
    """The edge-computing motivation, quantified (paper §I).

    Three server placements for the same client and app:

    * *edge*: the paper's nearby server — 30 Mbps, ~1 ms;
    * *cloud*: the same x86 hardware behind a WAN — 20 Mbps, 40 ms;
    * *cloud-GPU*: a datacenter accelerator (80x) behind the same WAN.

    Expected shape: proximity wins while servers are CPU-bound (the
    paper's setting); only an accelerator makes the remote datacenter
    competitive for these single-shot inferences.
    """
    placements = (
        ("edge", 30.0, 1.0, 1.0),
        ("cloud", 20.0, 40.0, 1.0),
        ("cloud-gpu", 20.0, 40.0, 80.0),
    )
    rows = []
    for location, mbps, latency_ms, speedup in placements:
        result = Testbed(
            bandwidth_bps=mbps * 1e6,
            latency_s=latency_ms / 1e3,
            server_speedup=speedup,
        ).run_offload(model_name, wait_for_ack=True)
        rows.append(
            LocationRow(
                location=location,
                bandwidth_mbps=mbps,
                one_way_latency_ms=latency_ms,
                total_seconds=result.total_seconds,
                migration_seconds=result.migration_seconds,
                server_exec_seconds=result.phases.server_exec,
            )
        )
    return rows


# -- 13. predictor feature sets --------------------------------------------------------

@dataclass
class PredictorStudyRow:
    """Prediction error of one feature set on one device class."""

    device: str
    flops_only_error: float
    multivariate_error: float


def predictor_feature_study() -> List[PredictorStudyRow]:
    """Flops-only vs compute+memory latency models, Neurosurgeon-style.

    Profiled over a configuration grid.  On the paper's compute-bound
    devices one feature suffices; on a memory-bandwidth-bound device the
    flops-only model breaks and the output-size feature rescues it.
    """
    from repro.devices import Device, DeviceProfile, odroid_xu4_client
    from repro.devices.predictor import (
        LatencyPredictor,
        MultivariatePredictor,
        prediction_error,
        profile_device,
        profiling_grid,
    )
    from repro.sim import Simulator

    grid = profiling_grid()
    profiles = [
        odroid_xu4_client(),
        DeviceProfile(
            name="memory-bound-accelerator",
            gflops_by_kind={"conv": 20.0, "pool": 40.0, "relu": 80.0, "fc": 20.0},
            default_gflops=20.0,
            mem_bw_bps=200e6,
        ),
    ]
    rows = []
    for profile in profiles:
        sim = Simulator()
        device = Device(sim, profile)
        samples = profile_device(profile, grid, noise=0.01)
        rows.append(
            PredictorStudyRow(
                device=profile.name,
                flops_only_error=prediction_error(
                    LatencyPredictor().fit(samples), device, grid
                ),
                multivariate_error=prediction_error(
                    MultivariatePredictor().fit(samples), device, grid
                ),
            )
        )
    return rows


# -- 14. energy ----------------------------------------------------------------------

@dataclass
class EnergyStudy:
    model: str
    local_joules: float
    offload_joules: float

    @property
    def offload_saves_energy(self) -> bool:
        return self.offload_joules < self.local_joules


def energy_study(
    model_name: str = "googlenet", energy: Optional[EnergyModel] = None
) -> EnergyStudy:
    """Client energy: local execution vs after-ACK offloading."""
    energy = energy or EnergyModel()
    local = Testbed().run_client_only(model_name)
    offload = Testbed().run_offload(model_name, wait_for_ack=True)
    phases = offload.phases
    client_compute = (
        phases.client_exec
        + phases.snapshot_capture_client
        + phases.snapshot_restore_client
    )
    radio = phases.transfer_to_server + phases.transfer_to_client
    wait = offload.total_seconds - client_compute - radio
    return EnergyStudy(
        model=model_name,
        local_joules=energy.local_execution_joules(local.total_seconds),
        offload_joules=energy.offloaded_joules(client_compute, radio, max(0.0, wait)),
    )


# -- CLI rendering ---------------------------------------------------------------

#: study names `repro ablation` accepts, in menu order
STUDY_NAMES = (
    "bandwidth", "partition", "decision", "snapshot",
    "gpu", "energy", "cache", "contention", "quantization",
    "scaling", "variability", "baselines", "placement", "streaming",
)


def study_report(which: str) -> str:
    """Run one ablation study and render its report text.

    This is the body of ``repro ablation <which>`` factored into an
    importable function so the execution engine can run (and cache) it
    like any other task.
    """
    from repro.eval.reporting import format_table

    lines: List[str] = []
    if which == "bandwidth":
        points = bandwidth_sweep("googlenet")
        lines.append(
            format_table(
                ["Mbps", "offload s", "client s", "offload wins"],
                [
                    [p.bandwidth_mbps, p.offload_seconds, p.client_seconds,
                     str(p.offload_wins)]
                    for p in points
                ],
            )
        )
    elif which == "partition":
        for mbps, label in partition_adaptivity("googlenet").items():
            lines.append(f"{mbps:>6g} Mbps -> {label}")
    elif which == "decision":
        for outcome in decision_study():
            lines.append(
                f"{outcome.model}: policy={outcome.decision.action} "
                f"measured={outcome.measured_best} agrees={outcome.policy_agrees}"
            )
    elif which == "snapshot":
        sizes = snapshot_optimization_study("googlenet")
        lines.append(f"conservative  : {sizes.conservative_bytes / 1e6:.2f} MB")
        lines.append(f"live-only     : {sizes.live_only_bytes / 1e6:.2f} MB")
        lines.append(f"live+data-URL : {sizes.data_url_bytes / 1e6:.2f} MB")
    elif which == "gpu":
        study = gpu_server_study()
        lines.append(f"CPU server : {study.cpu_offload_seconds:.2f} s")
        lines.append(f"GPU server : {study.gpu_offload_seconds:.2f} s "
                     f"(exec {study.gpu_server_exec_seconds:.3f} s)")
    elif which == "energy":
        study = energy_study()
        lines.append(f"local   : {study.local_joules:.1f} J")
        lines.append(f"offload : {study.offload_joules:.1f} J")
    elif which == "cache":
        study = session_cache_study()
        lines.append(f"first offload        : {study.first_offload_seconds:.2f} s")
        lines.append(
            f"repeat, full snapshot: {study.repeat_without_cache_seconds:.2f} s"
        )
        lines.append(f"repeat, delta        : {study.repeat_with_cache_seconds:.2f} s "
                     f"({study.bytes_saving:.0%} fewer bytes)")
    elif which == "contention":
        from repro.eval.workloads import contention_study

        for count, report in contention_study("smallnet", (1, 2, 4, 8)).items():
            lines.append(f"{count} clients: mean {report.mean_latency * 1000:6.1f} ms")
    elif which == "quantization":
        for impact in quantization_study("agenet"):
            lines.append(
                f"{impact.bits:2d} bits: agreement {impact.agreement:.0%}, "
                f"-{impact.size_reduction:.0%} bytes"
            )
    elif which == "scaling":
        for point in model_size_scaling_study():
            lines.append(
                f"{point.model:10s} {point.model_mb:6.1f} MB: presend "
                f"{point.presend_seconds:5.1f}s, policy={point.policy_action}"
            )
    elif which == "variability":
        study = variability_study(seed=3)
        lines.append(f"fixed 1st_pool: {study.fixed_total_seconds:.1f}s")
        lines.append(f"adaptive      : {study.adaptive_total_seconds:.1f}s "
                     f"(points: {study.adaptive_points})")
    elif which == "baselines":
        for row in baseline_comparison_study():
            lines.append(
                f"{row.approach:32s} first {row.first_use_seconds:6.2f}s "
                f"steady {row.steady_state_seconds:5.2f}s "
                f"any_app={row.any_app} handover={row.stateless_handover}"
            )
    elif which == "placement":
        for row in edge_vs_cloud_study():
            lines.append(
                f"{row.location:10s} total {row.total_seconds:5.2f}s "
                f"(migration {row.migration_seconds:.2f}s, "
                f"exec {row.server_exec_seconds:.2f}s)"
            )
    elif which == "streaming":
        from repro.eval.streaming import run_stream

        for mode, kwargs in (
            ("client", {}),
            ("offload", {}),
            ("offload+gpu", {"server_speedup": 80.0}),
        ):
            report = run_stream(
                "agenet",
                frames=4,
                fps=1.0,
                mode="client" if mode == "client" else "offload",
                **kwargs,
            )
            lines.append(
                f"{mode:12s} fps {report.achieved_fps:5.2f} "
                f"latency {report.mean_latency:5.2f}s keeps_up={report.keeps_up}"
            )
    else:
        raise ValueError(f"unknown ablation study {which!r}")
    return "\n".join(lines)
