"""Table 1 — overhead of VM-based installation vs snapshot migration.

Per benchmark model, four quantities:

* VM synthesis time and overlay size (on-demand installation);
* snapshot migration time and "snapshot except feature data" size, with
  pre-sending (model already at the server);
* the same without pre-sending (model rides along with the snapshot).

The orderings to preserve: synthesis (tens of seconds) ≫ first offload
without pre-send (7-12 s) ≫ offload with pre-send (sub-second), and the
with-pre-send snapshot-minus-feature is tiny (≤ 0.1 MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.eval import calibration
from repro.eval.reporting import format_table
from repro.eval.scenarios import Testbed, build_paper_model
from repro.nn.zoo import PAPER_MODELS
from repro.vmsynth import DiskImage, build_overlay, estimate_installation


@dataclass
class Table1Row:
    """One model's column in Table 1."""

    model: str
    synthesis_seconds: float
    overlay_mb: float
    presend_migration_seconds: float
    presend_snapshot_code_mb: float
    nopresend_migration_seconds: float
    nopresend_payload_mb: float


def run_table1_model(
    model_name: str,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
) -> Table1Row:
    model = build_paper_model(model_name)

    # VM synthesis: overlay with the offloading stack + this model.
    base = DiskImage.ubuntu_base()
    overlay = build_overlay(base, [model])
    link = Testbed(bandwidth_bps).profile
    installation = estimate_installation(overlay, link)

    # Snapshot migration, with and without pre-sending.
    with_presend = Testbed(bandwidth_bps).run_offload(model_name, wait_for_ack=True)
    without_presend = Testbed(bandwidth_bps).run_offload(
        model_name, wait_for_ack=False
    )
    return Table1Row(
        model=model_name,
        synthesis_seconds=installation.total_seconds,
        overlay_mb=installation.overlay_mb,
        presend_migration_seconds=with_presend.migration_seconds,
        presend_snapshot_code_mb=with_presend.snapshot_code_bytes / 1e6,
        nopresend_migration_seconds=without_presend.migration_seconds,
        # Paper reports 27 / 44 MB here: the model (riding along) plus the
        # snapshot code, i.e. everything except the feature data.
        nopresend_payload_mb=(
            without_presend.delivery_bytes + without_presend.snapshot_code_bytes
        )
        / 1e6,
    )


def run_table1(
    models: Sequence[str] = PAPER_MODELS,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    engine=None,
) -> List[Table1Row]:
    if engine is None:
        return [run_table1_model(name, bandwidth_bps) for name in models]
    from repro.exec import Task

    outcomes = engine.run(
        [
            Task.make(
                f"table1/{name}",
                "repro.eval.table1.run_table1_model",
                {"model_name": name, "bandwidth_bps": bandwidth_bps},
            )
            for name in models
        ]
    )
    return [outcome.payload for outcome in outcomes]


def format_table1(rows: List[Table1Row]) -> str:
    return format_table(
        [
            "configuration",
            *[row.model for row in rows],
        ],
        [
            ["VM synthesis: time (s)"] + [row.synthesis_seconds for row in rows],
            ["VM synthesis: overlay (MB)"] + [row.overlay_mb for row in rows],
            ["Offload w/ pre-send: migration (s)"]
            + [row.presend_migration_seconds for row in rows],
            ["Offload w/ pre-send: snapshot-excl-feature (MB)"]
            + [row.presend_snapshot_code_mb for row in rows],
            ["Offload w/o pre-send: migration (s)"]
            + [row.nopresend_migration_seconds for row in rows],
            ["Offload w/o pre-send: payload-excl-feature (MB)"]
            + [row.nopresend_payload_mb for row in rows],
        ],
        title="Table 1 — VM-based installation vs snapshot-based offloading",
    )


def check_table1_shape(rows: List[Table1Row]) -> List[str]:
    """Violations of Table 1's orderings and magnitudes."""
    violations = []
    for row in rows:
        if not (
            row.presend_migration_seconds
            < row.nopresend_migration_seconds
            < row.synthesis_seconds
        ):
            violations.append(
                f"{row.model}: expected presend < no-presend < synthesis ordering"
            )
        if not row.presend_migration_seconds < 1.5:
            violations.append(
                f"{row.model}: with pre-sending migration should be ~sub-second, "
                f"got {row.presend_migration_seconds:.2f}s"
            )
        if not 5.0 < row.nopresend_migration_seconds < 20.0:
            violations.append(
                f"{row.model}: without pre-sending migration should be 7-12s-ish"
            )
        if not 15.0 < row.synthesis_seconds < 30.0:
            violations.append(
                f"{row.model}: VM synthesis should take ~19-24s, got "
                f"{row.synthesis_seconds:.1f}s"
            )
        if not row.presend_snapshot_code_mb < 0.1:
            violations.append(
                f"{row.model}: snapshot-except-feature should be tiny (<0.1 MB)"
            )
        expected_overlay = {"googlenet": 65.0, "agenet": 82.0, "gendernet": 82.0}
        target = expected_overlay.get(row.model)
        if target is not None and abs(row.overlay_mb - target) > 0.15 * target:
            violations.append(
                f"{row.model}: overlay {row.overlay_mb:.1f} MB not within 15% "
                f"of the paper's {target:.0f} MB"
            )
    return violations
