"""The shared experimental testbed.

:class:`Testbed` assembles the paper's setup on the simulator: an
Odroid-class client and an x86 edge server joined by a 30 Mbps shaped
link, with the edge server agent already serving.  Experiments create one
fresh testbed per measured configuration (virtual clocks start at zero, so
runs never contaminate each other) and use the ``run_*`` helpers, each of
which drives a full :class:`~repro.core.session.OffloadingSession` and
returns its :class:`~repro.core.session.SessionResult`.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Tuple

import numpy as np

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.session import (
    OffloadingSession,
    SessionResult,
    expected_label_for,
    run_server_only,
)
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.eval import calibration
from repro.netsim import NetemProfile, Topology
from repro.nn.cost import costs_for_range, network_costs
from repro.nn.model import Model
from repro.nn.zoo import build_model
from repro.sim import SeededRng, Simulator
from repro.web.app import WebApp, make_inference_app, make_partial_inference_app
from repro.web.values import TypedArray


@functools.lru_cache(maxsize=8)
def build_paper_model(name: str, seed: int = calibration.EXPERIMENT_SEED) -> Model:
    """Build (and cache) a benchmark model.

    Sessions never mutate model parameters, so sharing one instance across
    testbeds is safe and saves rebuilding GoogLeNet per configuration.
    """
    return build_model(name, seed=seed)


@functools.lru_cache(maxsize=8)
def paper_input_for(name: str) -> TypedArray:
    """The canonical input image for a benchmark app (text-serialized)."""
    model = build_paper_model(name)
    shape = model.network.input_shape
    seed = calibration.INPUT_SEEDS.get(name, 99)
    rng = SeededRng(seed, f"input/{name}")
    return TypedArray(rng.uniform_array(shape, 0.0, 255.0))


@functools.lru_cache(maxsize=8)
def expected_label(name: str) -> int:
    model = build_paper_model(name)
    return expected_label_for(model, paper_input_for(name))


class Testbed:
    """Client + edge server + shaped link, ready to run sessions."""

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(
        self,
        bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
        latency_s: float = calibration.PAPER_LATENCY_S,
        server_installed: bool = True,
        server_speedup: float = 1.0,
    ):
        self.sim = Simulator()
        self.client_profile = odroid_xu4_client()
        self.server_profile = edge_server_x86(server_speedup)
        self.client_device = Device(self.sim, self.client_profile)
        self.server_device = Device(self.sim, self.server_profile)
        self.profile = NetemProfile(bandwidth_bps=bandwidth_bps, latency_s=latency_s)
        self.topology = Topology(self.sim)
        self.topology.add_edge_host("edge-1", self.profile)
        client_end, server_end = self.topology.attach("edge-1")
        self.server = EdgeServer(
            self.sim, self.server_device, name="edge-1", installed=server_installed
        )
        self.server.serve(server_end)
        self.client = ClientAgent(self.sim, self.client_device, client_end)

    # -- session builders -------------------------------------------------------
    def _session(
        self,
        model_name: str,
        app: WebApp,
        split_index: Optional[int] = None,
        partition_label: Optional[str] = None,
    ) -> OffloadingSession:
        model = build_paper_model(model_name)
        full = network_costs(model.network)
        front = rear = None
        if split_index is not None:
            last = len(model.network.layers) - 1
            front = costs_for_range(model.network, 0, split_index)
            rear = costs_for_range(model.network, split_index + 1, last)
        return OffloadingSession(
            self.sim,
            self.client,
            app,
            model_name,
            paper_input_for(model_name),
            full_costs=full,
            front_costs=front,
            rear_costs=rear,
            expected_label=expected_label(model_name),
            partition_label=partition_label,
        )

    def _run(self, process) -> SessionResult:
        done = self.sim.spawn(process, label="session")
        self.sim.run_until(lambda: done.triggered)
        if done.ok is False:
            raise done.value
        return done.value

    # -- the Fig. 6 configurations ------------------------------------------------
    def run_client_only(self, model_name: str) -> SessionResult:
        model = build_paper_model(model_name)
        session = self._session(model_name, make_inference_app(model))
        return self._run(session.run_client_only())

    def run_server_only(self, model_name: str) -> SessionResult:
        model = build_paper_model(model_name)
        process = run_server_only(
            self.sim,
            self.server_device,
            make_inference_app(model),
            model_name,
            paper_input_for(model_name),
            network_costs(model.network),
            expected_label=expected_label(model_name),
        )
        return self._run(process)

    def run_offload(self, model_name: str, wait_for_ack: bool) -> SessionResult:
        model = build_paper_model(model_name)
        session = self._session(model_name, make_inference_app(model))
        return self._run(session.run_offload(wait_for_ack=wait_for_ack))

    def run_offload_repeated(
        self,
        model_name: str,
        repetitions: int = 3,
        use_session_cache: bool = True,
        new_image_each_time: bool = False,
    ):
        """N back-to-back inferences after the ACK; returns outcome list.

        Exercises the paper's future-work path: with the session cache,
        every offload after the first sends a delta against the state left
        on the server.
        """
        from repro.core.session import expected_label_for
        from repro.core.snapshot import CaptureOptions
        from repro.nn.cost import network_costs
        from repro.web.app import make_inference_app

        model = build_paper_model(model_name)
        costs = network_costs(model.network)
        self.client.capture_options = CaptureOptions(include_canvas_pixels=True)
        self.client.start_app(make_inference_app(model), presend=True)
        self.client.runtime.globals["pending_pixels"] = paper_input_for(model_name)
        self.client.runtime.dispatch("click", "load_btn")
        self.client.mark_offload_point("click", "infer_btn")
        self.sim.run()  # pre-sending completes
        rng = SeededRng(17, f"repeat/{model_name}")
        outcomes = []
        for index in range(repetitions):
            if new_image_each_time and index > 0:
                shape = model.network.input_shape
                self.client.runtime.globals["pending_pixels"] = TypedArray(
                    rng.uniform_array(shape, 0, 255)
                )
                self.client.runtime.dispatch("click", "load_btn")
            self.client.runtime.dispatch("click", "infer_btn")
            event = self.client.take_intercepted()
            process = self.sim.spawn(
                self.client.offload(
                    event, server_costs=costs, use_session_cache=use_session_cache
                )
            )
            self.sim.run_until(lambda: process.triggered)
            if process.ok is False:
                raise process.value
            outcomes.append(process.value)
        return outcomes

    def run_offload_partial(
        self,
        model_name: str,
        point_label: str = calibration.FIG6_PARTIAL_POINT,
        wait_for_ack: bool = True,
    ) -> SessionResult:
        model = build_paper_model(model_name)
        point = model.network.point_by_label(point_label)
        front, rear = model.split(point.index)
        app = make_partial_inference_app(
            front, rear, name=f"{model_name}-partial@{point_label}"
        )
        session = self._session(
            model_name, app, split_index=point.index, partition_label=point_label
        )
        return self._run(session.run_offload_partial(wait_for_ack=wait_for_ack))
