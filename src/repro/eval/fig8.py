"""Fig. 8 — inference time with partial inference at various offloading
points, plus the feature-size analysis behind it.

For each benchmark model we sweep the offload point along the spine
(Input, 1st_conv, 1st_pool, 2nd_conv, ... — conv, pool and inception
positions), run a real partial-inference session at each point, and record
measured total time alongside the partition optimizer's prediction and the
serialized feature size.  The claims to preserve (§IV.B):

* time does not increase monotonically — it surges at conv points and
  dips at pool points;
* feature size drives transmission: GoogLeNet's feature is ~14.7 MB at
  1st_conv vs ~2.9 MB at 1st_pool;
* 1st_pool minimizes inference time among denaturing points, which is why
  Fig. 6's partial bar uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.partition import PartitionOptimizer
from repro.core.session import SessionResult
from repro.devices.predictor import fit_predictor_for
from repro.eval import calibration
from repro.eval.reporting import format_series
from repro.eval.scenarios import Testbed, build_paper_model
from repro.nn.cost import network_costs, spine_costs
from repro.nn.zoo import PAPER_MODELS

#: spine kinds shown on the paper's X axis
SWEEP_KINDS = ("input", "conv", "pool", "inception")


@dataclass
class Fig8Point:
    """One offload point of one model's sweep."""

    model: str
    label: str
    index: int
    kind: str
    measured_seconds: float
    predicted_seconds: float
    feature_mb: float
    result: SessionResult


def sweep_labels(model_name: str, max_points: Optional[int] = None) -> List[str]:
    """The offload points on a model's Fig. 8 axis, in spine order."""
    model = build_paper_model(model_name)
    labels = [
        point.label
        for point in model.network.offload_points()
        if point.layer_kind in SWEEP_KINDS
    ]
    return labels[:max_points] if max_points else labels


def make_optimizer(
    model_name: str, feature_bytes_fn=None, quantize_bits=None
) -> PartitionOptimizer:
    """The partition optimizer, with predictors profiled per device.

    ``feature_bytes_fn`` overrides the feature transfer-size model (e.g. a
    quantized codec instead of decimal text); ``quantize_bits`` instead
    prices the split at the bit-packed quantized wire size
    (:func:`repro.nn.quantize.packed_feature_bytes`).
    """
    model = build_paper_model(model_name)
    costs = network_costs(model.network)
    testbed = Testbed()  # only for its profiles
    client_predictor = fit_predictor_for(testbed.client_profile, costs, noise=0.02)
    server_predictor = fit_predictor_for(testbed.server_profile, costs, noise=0.02)
    return PartitionOptimizer(
        client_predictor,
        server_predictor,
        testbed.client_profile,
        testbed.server_profile,
        feature_bytes_fn=feature_bytes_fn,
        quantize_bits=quantize_bits,
    )


def run_fig8_model(
    model_name: str,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    max_points: Optional[int] = None,
) -> List[Fig8Point]:
    """Measure + predict the whole sweep for one model."""
    model = build_paper_model(model_name)
    optimizer = make_optimizer(model_name)
    spine = {point.index: point for point in spine_costs(model.network)}
    link = Testbed(bandwidth_bps).profile
    points: List[Fig8Point] = []
    for label in sweep_labels(model_name, max_points):
        net_point = model.network.point_by_label(label)
        result = Testbed(bandwidth_bps).run_offload_partial(model_name, label)
        estimate = optimizer.estimate(model.network, net_point, link)
        points.append(
            Fig8Point(
                model=model_name,
                label=label,
                index=net_point.index,
                kind=net_point.layer_kind,
                measured_seconds=result.total_seconds,
                predicted_seconds=estimate.total_seconds,
                feature_mb=spine[net_point.index].feature_text_bytes / 1e6,
                result=result,
            )
        )
    return points


def run_fig8(
    models: Sequence[str] = PAPER_MODELS,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    max_points: Optional[int] = None,
    engine=None,
) -> dict:
    if engine is None:
        return {
            model: run_fig8_model(model, bandwidth_bps, max_points)
            for model in models
        }
    from repro.exec import Task

    outcomes = engine.run(
        [
            Task.make(
                f"fig8/{model}",
                "repro.eval.fig8.run_fig8_model",
                {
                    "model_name": model,
                    "bandwidth_bps": bandwidth_bps,
                    "max_points": max_points,
                },
            )
            for model in models
        ]
    )
    return {model: outcome.payload for model, outcome in zip(models, outcomes)}


def format_fig8(points_by_model: dict) -> str:
    blocks = []
    for model, points in points_by_model.items():
        blocks.append(
            format_series(
                [point.label for point in points],
                {
                    "measured_s": [point.measured_seconds for point in points],
                    "predicted_s": [point.predicted_seconds for point in points],
                    "feature_MB": [point.feature_mb for point in points],
                },
                title=f"Fig. 8 — partial inference sweep: {model}",
            )
        )
    return "\n\n".join(blocks)


def check_fig8_shape(points_by_model: dict) -> List[str]:
    """Violations of the paper's Fig. 8 observations."""
    violations: List[str] = []
    for model, points in points_by_model.items():
        by_label = {point.label: point for point in points}
        conv = by_label.get("1st_conv")
        pool = by_label.get("1st_pool")
        if conv is None or pool is None:
            violations.append(f"{model}: sweep lacks 1st_conv/1st_pool points")
            continue
        if not pool.feature_mb < conv.feature_mb / 2.5:
            violations.append(
                f"{model}: pooling did not shrink the feature enough "
                f"({conv.feature_mb:.1f} -> {pool.feature_mb:.1f} MB)"
            )
        if not pool.measured_seconds < conv.measured_seconds:
            violations.append(
                f"{model}: inference time did not dip from 1st_conv to 1st_pool"
            )
        # Non-monotonicity: at least one later point is faster than an
        # earlier one (the paper's headline observation).
        measured = [point.measured_seconds for point in points]
        if all(a <= b for a, b in zip(measured, measured[1:])):
            violations.append(f"{model}: sweep is monotonically increasing")
        # 1st_pool is the best *denaturing* point (excluding input).
        denaturing = [point for point in points if point.label != "input"]
        best = min(denaturing, key=lambda point: point.measured_seconds)
        if best.label != "1st_pool":
            violations.append(
                f"{model}: best denaturing point is {best.label}, paper found 1st_pool"
            )
    return violations
