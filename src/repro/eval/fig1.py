"""Fig. 1 — GoogLeNet architecture and feature-data dimensions.

The paper's Fig. 1 walks an image through GoogLeNet and shows the feature
dimensions at the probe points it later uses to discuss privacy
(224x224x3 input, 56x56x64 after the stem, ... , 1000 scores out).  This
module regenerates that walk: dimensions, per-stage FLOPs, parameter
bytes and the serialized feature size at each spine position — computed
from the real architecture, and optionally cross-checked against an
actual numpy forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.eval.reporting import format_table
from repro.eval.scenarios import build_paper_model, paper_input_for
from repro.nn.cost import spine_costs


@dataclass(frozen=True)
class Fig1Row:
    """One spine position of GoogLeNet."""

    index: int
    name: str
    kind: str
    output_shape: tuple
    gflops: float
    param_mb: float
    feature_text_mb: float


def run_fig1(model_name: str = "googlenet", verify_numerically: bool = False) -> List[Fig1Row]:
    """The architecture walk; optionally verify shapes with a real forward."""
    model = build_paper_model(model_name)
    rows = [
        Fig1Row(
            index=point.index,
            name=point.name,
            kind=point.kind,
            output_shape=tuple(point.output_shape),
            gflops=point.flops / 1e9,
            param_mb=point.params * 4 / 1e6,
            feature_text_mb=point.feature_text_bytes / 1e6,
        )
        for point in spine_costs(model.network)
    ]
    if verify_numerically:
        activations = model.network.forward_with_activations(
            np.asarray(paper_input_for(model_name).data)
        )
        for row, activation in zip(rows, activations):
            if tuple(activation.shape) != row.output_shape:
                raise AssertionError(
                    f"analytic shape {row.output_shape} != executed shape "
                    f"{tuple(activation.shape)} at {row.name}"
                )
    return rows


def format_fig1(rows: List[Fig1Row]) -> str:
    return format_table(
        ["#", "layer", "kind", "output (CxHxW)", "GFLOPs", "params MB", "feature MB"],
        [
            [
                row.index,
                row.name,
                row.kind,
                "x".join(str(d) for d in row.output_shape),
                row.gflops,
                row.param_mb,
                row.feature_text_mb,
            ]
            for row in rows
        ],
        title="Fig. 1 — GoogLeNet architecture and feature data sizes",
    )
