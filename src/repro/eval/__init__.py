"""Experiment harness: regenerate every table and figure in the paper.

One module per artifact — :mod:`repro.eval.fig1`, :mod:`repro.eval.fig6`,
:mod:`repro.eval.fig7`, :mod:`repro.eval.fig8`, :mod:`repro.eval.table1` —
plus :mod:`repro.eval.ablations` for the extension studies DESIGN.md lists.
Each module exposes ``run_*`` (returns structured rows) and ``format_*``
(renders the rows the way the paper presents them).  The benchmark suite
under ``benchmarks/`` calls these and asserts the paper's shape claims.

:mod:`repro.eval.scenarios` builds the testbed (client, edge server,
shaped link) that every experiment shares; :mod:`repro.eval.calibration`
documents every tuned constant and where it comes from.
"""

from repro.eval.scenarios import Testbed, build_paper_model, paper_input_for

__all__ = ["Testbed", "build_paper_model", "paper_input_for"]
