"""Interactive workloads and multi-client edge-server scenarios.

The paper measures single interactions; real edge servers serve many
clients whose requests contend for the same browser/CPU.  This module
generates user-interaction *traces* (think: a person pointing a camera and
tapping "inference" every few seconds, occasionally on a new photo) and
replays any number of them against one shared :class:`~repro.core.server.EdgeServer`,
whose FIFO device makes queueing delays honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.eval import calibration
from repro.eval.scenarios import build_paper_model, paper_input_for
from repro.netsim import NetemProfile, Channel
from repro.nn.cost import network_costs
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


@dataclass(frozen=True)
class Interaction:
    """One user action in a trace."""

    at_seconds: float
    action: str  # "new_image" | "infer"


def generate_trace(
    rng: SeededRng,
    inferences: int = 5,
    mean_think_seconds: float = 4.0,
    new_image_probability: float = 0.4,
) -> List[Interaction]:
    """A user's session: Poisson think times, occasional new photos."""
    if inferences <= 0:
        raise ValueError("a trace needs at least one inference")
    interactions: List[Interaction] = []
    now = 0.0
    for index in range(inferences):
        now += rng.expovariate(1.0 / mean_think_seconds)
        if index == 0 or rng.chance(new_image_probability):
            interactions.append(Interaction(at_seconds=now, action="new_image"))
            now += 0.3  # the user looks at the new photo briefly
        interactions.append(Interaction(at_seconds=now, action="infer"))
    return interactions


def poisson_arrivals(
    rng: SeededRng, rate_per_s: float, count: int
) -> List[float]:
    """Absolute start times of ``count`` sessions arriving Poisson(rate).

    The fleet scenarios use this for session arrivals: inter-arrival gaps
    are exponential with mean ``1/rate_per_s``, cumulated from t=0.
    """
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    starts: List[float] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(rate_per_s)
        starts.append(now)
    return starts


@dataclass
class RequestRecord:
    """Latency record of one offloaded inference."""

    client_name: str
    issued_at: float
    completed_at: float
    snapshot_kind: str
    correct: bool

    @property
    def latency_seconds(self) -> float:
        return self.completed_at - self.issued_at


@dataclass
class WorkloadReport:
    """Outcome of a multi-client replay."""

    records: List[RequestRecord] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency_seconds for r in self.records) / len(self.records)

    @property
    def max_latency(self) -> float:
        return max((r.latency_seconds for r in self.records), default=0.0)

    @property
    def all_correct(self) -> bool:
        return all(record.correct for record in self.records)


class MultiClientScenario:
    """N clients replaying traces against one shared edge server."""

    def __init__(
        self,
        model_name: str = "smallnet",
        num_clients: int = 2,
        bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
        seed: int = 0,
        session_cache: bool = True,
    ):
        self.model_name = model_name
        self.sim = Simulator()
        self.rng = SeededRng(seed, f"workload/{model_name}")
        self.server = EdgeServer(
            self.sim,
            Device(self.sim, edge_server_x86()),
            name="edge",
            session_cache=session_cache,
        )
        self.clients: List[ClientAgent] = []
        self.traces: Dict[str, List[Interaction]] = {}
        profile = NetemProfile(bandwidth_bps=bandwidth_bps, latency_s=0.001)
        for index in range(num_clients):
            name = f"client-{index}"
            channel = Channel(self.sim, name, "edge", profile)
            self.server.serve(channel.end_b)
            client = ClientAgent(
                self.sim,
                Device(self.sim, odroid_xu4_client()),
                channel.end_a,
                capture_options=CaptureOptions(include_canvas_pixels=True),
            )
            client.name = name
            self.clients.append(client)
            self.traces[name] = generate_trace(
                self.rng.child(name),
                inferences=3,
            )
        self.report = WorkloadReport()

    def set_trace(self, client_index: int, trace: List[Interaction]) -> None:
        self.traces[self.clients[client_index].name] = list(trace)

    # -- replay ------------------------------------------------------------------
    def _client_process(self, client: ClientAgent):
        model = build_paper_model(self.model_name)
        costs = network_costs(model.network)
        expected = None
        client.start_app(make_inference_app(model), presend=True)
        client.mark_offload_point("click", "infer_btn")
        image_rng = self.rng.child(f"{client.name}/images")
        shape = model.network.input_shape

        def load_new_image():
            client.runtime.globals["pending_pixels"] = TypedArray(
                image_rng.uniform_array(shape, 0, 255)
            )
            client.runtime.dispatch("click", "load_btn")
            return int(
                __import__("numpy").argmax(
                    model.inference(client.runtime.globals["pending_pixels"].data)
                )
            )

        for interaction in self.traces[client.name]:
            wait = interaction.at_seconds - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            if interaction.action == "new_image":
                expected = load_new_image()
                continue
            issued_at = self.sim.now
            client.runtime.dispatch("click", "infer_btn")
            event = client.take_intercepted()
            outcome = yield from client.offload(event, server_costs=costs)
            self.report.records.append(
                RequestRecord(
                    client_name=client.name,
                    issued_at=issued_at,
                    completed_at=self.sim.now,
                    snapshot_kind=outcome.snapshot.kind,
                    correct=client.runtime.globals.get("result_label") == expected,
                )
            )

    def run(self) -> WorkloadReport:
        processes = [
            self.sim.spawn(self._client_process(client), label=client.name)
            for client in self.clients
        ]
        self.sim.run_until(lambda: all(p.triggered for p in processes))
        for process in processes:
            if process.ok is False:
                raise process.value
        return self.report


def contention_study(
    model_name: str = "smallnet",
    client_counts=(1, 4),
    seed: int = 0,
) -> Dict[int, WorkloadReport]:
    """Mean request latency as the shared server's load grows.

    All clients issue their inferences at (nearly) the same instants, so a
    bigger fleet means deeper FIFO queues on the server's browser device.
    """
    reports = {}
    for count in client_counts:
        scenario = MultiClientScenario(model_name, num_clients=count, seed=seed)
        # Synchronized bursts: every client follows the same trace times.
        base_trace = generate_trace(SeededRng(seed, "burst"), inferences=3)
        for index in range(count):
            scenario.set_trace(index, base_trace)
        reports[count] = scenario.run()
    return reports
