"""The full reproduction campaign: every artifact into one report.

``python -m repro campaign --out REPORT.md`` regenerates Fig. 1, Fig. 6,
Fig. 7, Fig. 8 and Table 1 plus all ablation studies, checks every shape
claim, and renders a single self-contained markdown report — the artifact-
evaluation entry point.  A ``quick=True`` mode restricts the sweep to one
paper model for CI-speed smoke runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.nn.zoo import PAPER_MODELS
from repro.obs.metrics import MetricsRegistry, collect_metrics


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    report_markdown: str
    violations: Dict[str, List[str]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: telemetry merged across every simulator the campaign built
    metrics: Optional[MetricsRegistry] = None

    @property
    def all_claims_hold(self) -> bool:
        return all(not items for items in self.violations.values())


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def run_campaign(
    models: Optional[Sequence[str]] = None,
    include_ablations: bool = True,
    quick: bool = False,
) -> CampaignResult:
    """Run everything; returns the report and any shape violations."""
    from repro.eval import ablations
    from repro.eval.fig1 import format_fig1, run_fig1
    from repro.eval.fig6 import chart_fig6, check_fig6_shape, format_fig6, run_fig6
    from repro.eval.fig7 import check_fig7_shape, format_fig7, run_fig7
    from repro.eval.fig8 import check_fig8_shape, format_fig8, run_fig8
    from repro.eval.reporting import format_metrics_summary, format_table
    from repro.eval.table1 import check_table1_shape, format_table1, run_table1

    started = time.perf_counter()
    if models is None:
        models = ("agenet",) if quick else PAPER_MODELS
    violations: Dict[str, List[str]] = {}
    sections: List[str] = [
        "# Reproduction report",
        "",
        "Computation Offloading for Machine Learning Web Apps in the Edge "
        "Server Environment (ICDCS 2018) — regenerated artifacts.",
        f"\nModels: {', '.join(models)}.",
    ]

    with collect_metrics() as registries:
        sections.append("\n## Fig. 1 — GoogLeNet architecture walk\n")
        sections.append(_code_block(format_fig1(run_fig1("googlenet"))))

        sections.append("\n## Fig. 6 — execution time of inference\n")
        fig6_rows = run_fig6(models=models)
        violations["fig6"] = check_fig6_shape(fig6_rows)
        sections.append(_code_block(format_fig6(fig6_rows)))
        sections.append(_code_block(chart_fig6(fig6_rows)))

        sections.append("\n## Fig. 7 — breakdown of the inference time\n")
        fig7_bars = run_fig7(models=models)
        violations["fig7"] = check_fig7_shape(fig7_bars)
        sections.append(_code_block(format_fig7(fig7_bars)))

        sections.append("\n## Fig. 8 — partial inference sweep\n")
        fig8_points = run_fig8(models=models, max_points=6 if quick else None)
        violations["fig8"] = check_fig8_shape(fig8_points)
        sections.append(_code_block(format_fig8(fig8_points)))

        sections.append("\n## Table 1 — VM-based installation overhead\n")
        table1_rows = run_table1(models=models)
        violations["table1"] = check_table1_shape(table1_rows)
        sections.append(_code_block(format_table1(table1_rows)))

        if include_ablations:
            sections.append("\n## Ablations\n")
            model = models[0]
            sweep = ablations.bandwidth_sweep(model, (1, 4, 30, 120))
            sections.append("### Bandwidth sweep\n")
            sections.append(
                _code_block(
                    format_table(
                        ["Mbps", "offload s", "client s"],
                        [
                            [p.bandwidth_mbps, p.offload_seconds, p.client_seconds]
                            for p in sweep
                        ],
                    )
                )
            )
            sections.append("### Baseline comparison\n")
            sections.append(
                _code_block(
                    format_table(
                        ["approach", "first s", "steady s", "any app", "handover"],
                        [
                            [
                                row.approach,
                                row.first_use_seconds,
                                row.steady_state_seconds,
                                str(row.any_app),
                                str(row.stateless_handover),
                            ]
                            for row in ablations.baseline_comparison_study(model)
                        ],
                    )
                )
            )
            sections.append("### Session cache (the paper's future work)\n")
            cache = ablations.session_cache_study(model)
            sections.append(
                _code_block(
                    format_table(
                        ["quantity", "value"],
                        [
                            ["repeat w/o cache (s)", cache.repeat_without_cache_seconds],
                            ["repeat w/ cache (s)", cache.repeat_with_cache_seconds],
                            ["snapshot bytes saved", f"{cache.bytes_saving:.0%}"],
                        ],
                    )
                )
            )

    metrics = MetricsRegistry.merged(registries)
    sections.append("\n## Telemetry\n")
    sections.append(
        f"Merged registry of {len(registries)} simulator runs "
        f"({len(metrics)} series). Full export: rerun with "
        "`python -m repro campaign --metrics-out metrics.prom`.\n"
    )
    sections.append(
        _code_block(
            format_metrics_summary(
                metrics,
                prefixes=("sessions_", "session_", "server_", "client_", "net_"),
            )
        )
    )

    sections.append("\n## Shape-claim verification\n")
    rows = [
        [artifact, "PASS" if not items else f"FAIL ({len(items)})"]
        for artifact, items in violations.items()
    ]
    sections.append(_code_block(format_table(["artifact", "claims"], rows)))
    for artifact, items in violations.items():
        for item in items:
            sections.append(f"- **{artifact}**: {item}")

    wall = time.perf_counter() - started
    sections.append(f"\n_Regenerated in {wall:.1f}s of wall time (virtual-clock simulation)._")
    return CampaignResult(
        report_markdown="\n".join(sections) + "\n",
        violations=violations,
        wall_seconds=wall,
        metrics=metrics,
    )


def write_report(path: str, result: CampaignResult) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.report_markdown)
    return path
