"""The full reproduction campaign: every artifact into one report.

``python -m repro campaign --out REPORT.md`` regenerates Fig. 1, Fig. 6,
Fig. 7, Fig. 8 and Table 1 plus all ablation studies, checks every shape
claim, and renders a single self-contained markdown report — the artifact-
evaluation entry point.  A ``quick=True`` mode restricts the sweep to one
paper model for CI-speed smoke runs.

The campaign is a task list, not a script: every figure row, table row
and ablation study is an independent :class:`~repro.exec.Task`, executed
by an :class:`~repro.exec.ExecutionEngine` — serially (``jobs=1``),
across worker processes (``jobs=N``), and/or against a content-addressed
result cache (``cache_dir=...``).  The report is assembled from outcomes
in fixed task order and contains no wall-clock numbers, so it is
**byte-identical** across all execution strategies; wall-clock timings
live in :attr:`CampaignResult.wall_seconds`, per-section in
:attr:`CampaignResult.engine_stats`, and can be embedded explicitly with
``include_timings=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exec import EngineRunStats, ExecutionEngine, ResultCache, Task
from repro.nn.zoo import PAPER_MODELS
from repro.obs.metrics import MetricsRegistry

#: ablation bandwidth grid shown in the report
ABLATION_BANDWIDTHS_MBPS = (1, 4, 30, 120)


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    report_markdown: str
    violations: Dict[str, List[str]] = field(default_factory=dict)
    #: wall-clock of the whole run (engine + assembly), measured once
    wall_seconds: float = 0.0
    #: telemetry merged across every simulator the campaign built
    metrics: Optional[MetricsRegistry] = None
    #: per-task wall-clock cost (cache hits report their original cost)
    section_wall_seconds: Dict[str, float] = field(default_factory=dict)
    #: what the execution engine did (jobs, cache hits, per-task timings)
    engine_stats: Optional[EngineRunStats] = None

    @property
    def all_claims_hold(self) -> bool:
        return all(not items for items in self.violations.values())

    def timings_markdown(self) -> str:
        """The wall-clock timing block (non-deterministic by nature)."""
        from repro.eval.reporting import format_table

        rows = [
            [stats.key, stats.wall_seconds, "yes" if stats.cached else "no"]
            for stats in (self.engine_stats.tasks if self.engine_stats else [])
        ]
        jobs = self.engine_stats.jobs if self.engine_stats else 1
        hits = self.engine_stats.cache_hits if self.engine_stats else 0
        lines = [
            "### Campaign timings (wall clock)\n",
            _code_block(
                format_table(["section", "seconds", "cached"], rows)
            ),
            f"\nTotal: {self.wall_seconds:.2f}s wall with jobs={jobs}, "
            f"{hits} cached section(s).  Cached sections report their "
            "original compute cost.",
        ]
        return "\n".join(lines)


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def build_campaign_tasks(
    models: Sequence[str],
    include_ablations: bool = True,
    quick: bool = False,
    bandwidth_bps: Optional[float] = None,
) -> List[Task]:
    """The campaign as an explicit task list, in report order."""
    from repro.eval import calibration

    if bandwidth_bps is None:
        bandwidth_bps = calibration.PAPER_BANDWIDTH_BPS
    tasks: List[Task] = [
        Task.make("fig1", "repro.eval.fig1.run_fig1", {"model_name": "googlenet"})
    ]
    for model in models:
        tasks.append(
            Task.make(
                f"fig6/{model}",
                "repro.eval.fig6.run_fig6_model",
                {"model_name": model, "bandwidth_bps": bandwidth_bps},
            )
        )
    for model in models:
        tasks.append(
            Task.make(
                f"fig7/{model}",
                "repro.eval.fig7.run_fig7_model",
                {"model_name": model, "bandwidth_bps": bandwidth_bps},
            )
        )
    for model in models:
        tasks.append(
            Task.make(
                f"fig8/{model}",
                "repro.eval.fig8.run_fig8_model",
                {
                    "model_name": model,
                    "bandwidth_bps": bandwidth_bps,
                    "max_points": 6 if quick else None,
                },
            )
        )
    for model in models:
        tasks.append(
            Task.make(
                f"table1/{model}",
                "repro.eval.table1.run_table1_model",
                {"model_name": model, "bandwidth_bps": bandwidth_bps},
            )
        )
    if include_ablations:
        ablation_model = models[0]
        tasks.append(
            Task.make(
                "ablations/bandwidth",
                "repro.eval.ablations.bandwidth_sweep",
                {
                    "model_name": ablation_model,
                    "bandwidths_mbps": ABLATION_BANDWIDTHS_MBPS,
                },
            )
        )
        tasks.append(
            Task.make(
                "ablations/baselines",
                "repro.eval.ablations.baseline_comparison_study",
                {"model_name": ablation_model},
            )
        )
        tasks.append(
            Task.make(
                "ablations/session_cache",
                "repro.eval.ablations.session_cache_study",
                {"model_name": ablation_model},
            )
        )
    return tasks


def run_campaign(
    models: Optional[Sequence[str]] = None,
    include_ablations: bool = True,
    quick: bool = False,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    engine: Optional[ExecutionEngine] = None,
    include_timings: bool = False,
) -> CampaignResult:
    """Run everything; returns the report and any shape violations.

    ``jobs`` fans the independent sections across worker processes;
    ``cache_dir`` enables the content-addressed result cache (disable an
    inherited directory with ``use_cache=False``).  Both leave the report
    byte-identical.  ``include_timings=True`` appends the (inherently
    non-deterministic) wall-clock timing block to the report.
    """
    from repro.eval.fig1 import format_fig1
    from repro.eval.fig6 import chart_fig6, check_fig6_shape, format_fig6
    from repro.eval.fig7 import check_fig7_shape, format_fig7
    from repro.eval.fig8 import check_fig8_shape, format_fig8
    from repro.eval.reporting import format_metrics_summary, format_table
    from repro.eval.table1 import check_table1_shape, format_table1

    started = time.perf_counter()
    if models is None:
        models = ("agenet",) if quick else PAPER_MODELS
    if engine is None:
        cache = (
            ResultCache(cache_dir) if cache_dir is not None and use_cache else None
        )
        engine = ExecutionEngine(jobs=jobs, cache=cache)

    tasks = build_campaign_tasks(models, include_ablations, quick)
    outcomes = {o.key: o for o in engine.run(tasks)}
    payload = lambda key: outcomes[key].payload  # noqa: E731

    violations: Dict[str, List[str]] = {}
    sections: List[str] = [
        "# Reproduction report",
        "",
        "Computation Offloading for Machine Learning Web Apps in the Edge "
        "Server Environment (ICDCS 2018) — regenerated artifacts.",
        f"\nModels: {', '.join(models)}.",
    ]

    sections.append("\n## Fig. 1 — GoogLeNet architecture walk\n")
    sections.append(_code_block(format_fig1(payload("fig1"))))

    sections.append("\n## Fig. 6 — execution time of inference\n")
    fig6_rows = [payload(f"fig6/{model}") for model in models]
    violations["fig6"] = check_fig6_shape(fig6_rows)
    sections.append(_code_block(format_fig6(fig6_rows)))
    sections.append(_code_block(chart_fig6(fig6_rows)))

    sections.append("\n## Fig. 7 — breakdown of the inference time\n")
    fig7_bars = [bar for model in models for bar in payload(f"fig7/{model}")]
    violations["fig7"] = check_fig7_shape(fig7_bars)
    sections.append(_code_block(format_fig7(fig7_bars)))

    sections.append("\n## Fig. 8 — partial inference sweep\n")
    fig8_points = {model: payload(f"fig8/{model}") for model in models}
    violations["fig8"] = check_fig8_shape(fig8_points)
    sections.append(_code_block(format_fig8(fig8_points)))

    sections.append("\n## Table 1 — VM-based installation overhead\n")
    table1_rows = [payload(f"table1/{model}") for model in models]
    violations["table1"] = check_table1_shape(table1_rows)
    sections.append(_code_block(format_table1(table1_rows)))

    if include_ablations:
        sections.append("\n## Ablations\n")
        sweep = payload("ablations/bandwidth")
        sections.append("### Bandwidth sweep\n")
        sections.append(
            _code_block(
                format_table(
                    ["Mbps", "offload s", "client s"],
                    [
                        [p.bandwidth_mbps, p.offload_seconds, p.client_seconds]
                        for p in sweep
                    ],
                )
            )
        )
        sections.append("### Baseline comparison\n")
        sections.append(
            _code_block(
                format_table(
                    ["approach", "first s", "steady s", "any app", "handover"],
                    [
                        [
                            row.approach,
                            row.first_use_seconds,
                            row.steady_state_seconds,
                            str(row.any_app),
                            str(row.stateless_handover),
                        ]
                        for row in payload("ablations/baselines")
                    ],
                )
            )
        )
        sections.append("### Session cache (the paper's future work)\n")
        cache_study = payload("ablations/session_cache")
        sections.append(
            _code_block(
                format_table(
                    ["quantity", "value"],
                    [
                        ["repeat w/o cache (s)",
                         cache_study.repeat_without_cache_seconds],
                        ["repeat w/ cache (s)",
                         cache_study.repeat_with_cache_seconds],
                        ["snapshot bytes saved", f"{cache_study.bytes_saving:.0%}"],
                    ],
                )
            )
        )

    registries = [
        registry for task in tasks for registry in outcomes[task.key].registries
    ]
    metrics = MetricsRegistry.merged(registries)
    sections.append("\n## Telemetry\n")
    sections.append(
        f"Merged registry of {len(registries)} simulator runs "
        f"({len(metrics)} series). Full export: rerun with "
        "`python -m repro campaign --metrics-out metrics.prom`.\n"
    )
    sections.append(
        _code_block(
            format_metrics_summary(
                metrics,
                prefixes=("sessions_", "session_", "server_", "client_", "net_"),
            )
        )
    )

    sections.append("\n## Shape-claim verification\n")
    rows = [
        [artifact, "PASS" if not items else f"FAIL ({len(items)})"]
        for artifact, items in violations.items()
    ]
    sections.append(_code_block(format_table(["artifact", "claims"], rows)))
    for artifact, items in violations.items():
        for item in items:
            sections.append(f"- **{artifact}**: {item}")

    sections.append(
        "\n_Regenerated deterministically on the virtual clock; wall-clock "
        "timings are reported by the CLI and `benchmarks/bench_campaign.py` "
        "(see docs/PERFORMANCE.md)._"
    )

    wall = time.perf_counter() - started
    result = CampaignResult(
        report_markdown="\n".join(sections) + "\n",
        violations=violations,
        wall_seconds=wall,
        metrics=metrics,
        section_wall_seconds={
            task.key: outcomes[task.key].wall_seconds for task in tasks
        },
        engine_stats=engine.last_run,
    )
    if include_timings:
        result.report_markdown += "\n" + result.timings_markdown() + "\n"
    return result


def write_report(path: str, result: CampaignResult) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.report_markdown)
    return path
