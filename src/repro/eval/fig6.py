"""Fig. 6 — execution time of inference in the three benchmark apps.

Five configurations per app: Client, Server, Offloading before the ACK,
Offloading after the ACK, and Offloading with partial inference (at
1st_pool, per §IV.B).  Each configuration runs in a fresh testbed so the
timelines are independent, exactly like separate measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.session import SessionResult
from repro.eval import calibration
from repro.eval.reporting import format_table
from repro.eval.scenarios import Testbed
from repro.nn.zoo import PAPER_MODELS

CONFIGURATIONS = (
    "client",
    "server",
    "offload_before_ack",
    "offload_after_ack",
    "offload_partial",
)


@dataclass
class Fig6Row:
    """One benchmark app's bar group."""

    model: str
    results: Dict[str, SessionResult]

    def seconds(self, configuration: str) -> float:
        return self.results[configuration].total_seconds

    def all_correct(self) -> bool:
        return all(result.correct for result in self.results.values())


def run_fig6_model(
    model_name: str,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    partial_point: str = calibration.FIG6_PARTIAL_POINT,
) -> Fig6Row:
    """All five configurations for one app."""
    results = {
        "client": Testbed(bandwidth_bps).run_client_only(model_name),
        "server": Testbed(bandwidth_bps).run_server_only(model_name),
        "offload_before_ack": Testbed(bandwidth_bps).run_offload(
            model_name, wait_for_ack=False
        ),
        "offload_after_ack": Testbed(bandwidth_bps).run_offload(
            model_name, wait_for_ack=True
        ),
        "offload_partial": Testbed(bandwidth_bps).run_offload_partial(
            model_name, partial_point
        ),
    }
    return Fig6Row(model=model_name, results=results)


def run_fig6(
    models: Sequence[str] = PAPER_MODELS,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    engine=None,
) -> List[Fig6Row]:
    """All apps; with an :class:`~repro.exec.ExecutionEngine`, rows run as
    independent tasks (parallel and/or cached) with identical results."""
    if engine is None:
        return [run_fig6_model(name, bandwidth_bps) for name in models]
    from repro.exec import Task

    outcomes = engine.run(
        [
            Task.make(
                f"fig6/{name}",
                "repro.eval.fig6.run_fig6_model",
                {"model_name": name, "bandwidth_bps": bandwidth_bps},
            )
            for name in models
        ]
    )
    return [outcome.payload for outcome in outcomes]


def format_fig6(rows: List[Fig6Row]) -> str:
    return format_table(
        ["app"] + list(CONFIGURATIONS) + ["all correct"],
        [
            [row.model]
            + [row.seconds(configuration) for configuration in CONFIGURATIONS]
            + [str(row.all_correct())]
            for row in rows
        ],
        title="Fig. 6 — inference time (seconds) per configuration",
    )


def chart_fig6(rows: List[Fig6Row]) -> str:
    """ASCII bar groups, one per app — the visual shape of the figure."""
    from repro.eval.reporting import format_bar_chart

    blocks = []
    for row in rows:
        blocks.append(
            format_bar_chart(
                {
                    configuration: row.seconds(configuration)
                    for configuration in CONFIGURATIONS
                },
                title=f"{row.model}",
            )
        )
    return "\n\n".join(blocks)


def check_fig6_shape(rows: List[Fig6Row]) -> List[str]:
    """The paper's qualitative claims; returns a list of violations."""
    violations = []
    for row in rows:
        client = row.seconds("client")
        server = row.seconds("server")
        before = row.seconds("offload_before_ack")
        after = row.seconds("offload_after_ack")
        partial = row.seconds("offload_partial")
        if not server < client / 3:
            violations.append(f"{row.model}: server not much faster than client")
        if not after < before:
            violations.append(f"{row.model}: pre-sending did not help")
        if not after < client:
            violations.append(f"{row.model}: offloading after ACK slower than client")
        if not after < 2.0 * server:
            violations.append(
                f"{row.model}: offload-after-ACK not comparable to server-only"
            )
        if not partial >= after * 0.95:
            violations.append(
                f"{row.model}: partial inference unexpectedly beat full offload"
            )
        if not row.all_correct():
            violations.append(f"{row.model}: some configuration computed a wrong label")
    by_model = {row.model: row for row in rows}
    if "agenet" in by_model:
        row = by_model["agenet"]
        if not row.seconds("offload_before_ack") > row.seconds("client"):
            violations.append(
                "agenet: offloading before ACK should be slower than local execution"
            )
    if "googlenet" in by_model:
        row = by_model["googlenet"]
        if not row.seconds("offload_before_ack") < row.seconds("client"):
            violations.append(
                "googlenet: offloading before ACK should still beat local execution"
            )
    return violations
