"""Every calibrated constant of the reproduction, with provenance.

The paper reports measurements from a physical testbed (Odroid-XU4 client,
x86 server, netem-shaped Ethernet, WebKit + CaffeJS).  Our substrate is a
simulator, so a handful of constants anchor virtual time to that testbed.
This module is the single registry of those constants; experiments import
from here, and EXPERIMENTS.md cites these names when comparing paper
numbers to measured numbers.

None of the *shape* claims (who wins, crossovers, orderings) depend on
fine-tuning these: they follow from architecture-derived quantities (model
bytes, per-layer FLOPs, feature sizes) divided by rates in the right
ballpark.
"""

from __future__ import annotations

from repro.netsim.link import NetemProfile

#: Paper §IV: "We limited the network bandwidth under 30 Mbps to emulate
#: the network condition similar to Wi-Fi by using netem".
PAPER_BANDWIDTH_BPS = 30e6

#: One-way LAN latency under netem; the paper does not report it, 1 ms is
#: a standard shaped-Ethernet figure.  Sub-dominant everywhere.
PAPER_LATENCY_S = 0.001


def paper_link() -> NetemProfile:
    """The testbed's shaped link."""
    return NetemProfile(bandwidth_bps=PAPER_BANDWIDTH_BPS, latency_s=PAPER_LATENCY_S)


#: Device throughputs live in repro.devices.profiles; they were chosen so
#: that GoogLeNet (3.19 GFLOPs, computed from the architecture) lands near
#: 20 s on the client and 2.5 s on the server — the magnitudes of Fig. 6
#: for CaffeJS without GPU — preserving the ~8x client/server gap.
CLIENT_GOOGLENET_SECONDS_TARGET = 20.0
SERVER_GOOGLENET_SECONDS_TARGET = 2.5

#: Feature tensors serialize as decimal text at ~18 bytes/value
#: (repro.nn.tensor.TEXT_BYTES_PER_VALUE).  Cross-checked against the
#: paper's measured GoogLeNet features: 14.7 MB after 1st_conv (ours:
#: 14.5 MB) and 2.9 MB after 1st_pool (ours: 3.6 MB).
FEATURE_TEXT_BYTES_PER_VALUE = 18

#: Input images for the benchmark apps, matching each model's input layer.
#: The pixels travel as canvas data (text-serialized), the dominant part of
#: a full-offload snapshot — the paper's ~0.6 s migration at 30 Mbps.
INPUT_SEEDS = {"googlenet": 11, "agenet": 12, "gendernet": 13}

#: VM overlay compression (repro.vmsynth.components): solving the paper's
#: two overlay equations (65 MB with a 27 MB model, 82 MB with 44 MB)
#: gives ~0.37 for binaries/libraries and ~0.98 for model parameters.
#: Synthesis-side rates (decompress 80 MB/s, apply 400 MB/s, boot 0.8 s)
#: put total install time in the paper's 19-24 s band once transfer at
#: 30 Mbps is added.
OVERLAY_BINARY_RATIO = 0.374
OVERLAY_MODEL_RATIO = 0.98

#: The paper's Fig. 6 partial-inference bar offloads at the first pool
#: layer: "the partial inference result in Fig. 6 was based on offloading
#: at 1st_pool layer".
FIG6_PARTIAL_POINT = "1st_pool"

#: Canonical experiment seed; every experiment is deterministic given it.
EXPERIMENT_SEED = 0
