"""Fig. 7 — breakdown of the inference time.

For the two offloading configurations the paper decomposes (after-ACK full
offloading and partial inference), show where the time goes: snapshot
capture (C), transmission, snapshot restore (S), DNN execution, snapshot
capture (S), transmission, snapshot restore (C).  The paper's finding to
preserve: snapshot overheads are negligible next to DNN execution, and
server execution dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.session import SessionResult
from repro.eval import calibration
from repro.eval.reporting import format_stacked_bars
from repro.eval.scenarios import Testbed
from repro.nn.zoo import PAPER_MODELS

#: segment order follows the paper's legend
SEGMENTS = (
    "client_exec",
    "snapshot_capture_client",
    "transfer_to_server",
    "snapshot_restore_server",
    "server_exec",
    "snapshot_capture_server",
    "transfer_to_client",
    "snapshot_restore_client",
    "other",
)


@dataclass
class Fig7Bar:
    """One stacked bar: a (model, configuration) pair."""

    model: str
    configuration: str
    segments: Dict[str, float]
    result: SessionResult

    @property
    def total(self) -> float:
        return sum(self.segments.values())

    def snapshot_overhead(self) -> float:
        """Capture + restore on both sides."""
        return (
            self.segments["snapshot_capture_client"]
            + self.segments["snapshot_restore_server"]
            + self.segments["snapshot_capture_server"]
            + self.segments["snapshot_restore_client"]
        )

    def dnn_exec(self) -> float:
        return self.segments["client_exec"] + self.segments["server_exec"]


def _bar(model: str, configuration: str, result: SessionResult) -> Fig7Bar:
    segments = result.phases.as_dict()
    ordered = {name: segments[name] for name in SEGMENTS}
    return Fig7Bar(
        model=model, configuration=configuration, segments=ordered, result=result
    )


def run_fig7_model(
    model_name: str,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
) -> List[Fig7Bar]:
    """Both decomposed configurations for one app."""
    after = Testbed(bandwidth_bps).run_offload(model_name, wait_for_ack=True)
    partial = Testbed(bandwidth_bps).run_offload_partial(
        model_name, calibration.FIG6_PARTIAL_POINT
    )
    return [
        _bar(model_name, "offload_after_ack", after),
        _bar(model_name, "offload_partial", partial),
    ]


def run_fig7(
    models: Sequence[str] = PAPER_MODELS,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    engine=None,
) -> List[Fig7Bar]:
    if engine is None:
        bars: List[Fig7Bar] = []
        for model in models:
            bars.extend(run_fig7_model(model, bandwidth_bps))
        return bars
    from repro.exec import Task

    outcomes = engine.run(
        [
            Task.make(
                f"fig7/{model}",
                "repro.eval.fig7.run_fig7_model",
                {"model_name": model, "bandwidth_bps": bandwidth_bps},
            )
            for model in models
        ]
    )
    return [bar for outcome in outcomes for bar in outcome.payload]


def format_fig7(bars: List[Fig7Bar]) -> str:
    return format_stacked_bars(
        {f"{bar.model} / {bar.configuration}": bar.segments for bar in bars},
        title="Fig. 7 — breakdown of the inference time",
    )


def check_fig7_shape(bars: List[Fig7Bar]) -> List[str]:
    """Violations of the paper's breakdown claims."""
    violations = []
    for bar in bars:
        if not bar.snapshot_overhead() < 0.5 * bar.dnn_exec():
            violations.append(
                f"{bar.model}/{bar.configuration}: snapshot overhead not "
                "negligible vs DNN execution"
            )
        dominant = max(bar.segments, key=bar.segments.get)
        if dominant not in ("server_exec", "client_exec"):
            violations.append(
                f"{bar.model}/{bar.configuration}: dominant phase is "
                f"{dominant}, expected DNN execution"
            )
    return violations
