"""Plain-text rendering of experiment results (tables and bar series)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render an ASCII table with right-aligned numeric cells."""
    rendered_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                row[i].rjust(widths[i]) if _is_numeric(row[i]) else row[i].ljust(widths[i])
                for i in range(len(headers))
            )
        )
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_stacked_bars(
    segments_by_bar: Dict[str, Dict[str, float]],
    unit: str = "s",
    title: str = "",
) -> str:
    """Render stacked-bar data (Fig. 7 style) as labelled segment lists."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for bar, segments in segments_by_bar.items():
        total = sum(segments.values())
        lines.append(f"{bar}  (total {total:.2f}{unit})")
        for name, value in segments.items():
            if value <= 0:
                continue
            share = 100.0 * value / total if total else 0.0
            lines.append(f"    {name:28s} {value:8.3f}{unit}  {share:5.1f}%")
    return "\n".join(lines)


def format_series(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    unit: str = "s",
    title: str = "",
) -> str:
    """Render line-chart data (Fig. 8 style) as a labelled grid."""
    headers = ["point"] + list(series)
    rows = []
    for index, label in enumerate(x_labels):
        rows.append([label] + [series[name][index] for name in series])
    return format_table(headers, rows, title=title)


def format_metrics_summary(
    registry: "MetricsRegistry",
    title: str = "",
    prefixes: Sequence[str] = (),
) -> str:
    """Render a registry snapshot as a table (one row per labeled series).

    Counters and gauges show their value; histograms show count, sum and
    mean.  ``prefixes`` restricts the output to matching family names
    (e.g. ``("server_", "session_")``) so reports can show the series that
    matter without the kernel-level firehose.
    """
    from repro.obs.metrics import Histogram

    rows: List[List] = []
    for metric in registry:
        if prefixes and not any(metric.name.startswith(p) for p in prefixes):
            continue
        label_text = ",".join(f"{k}={v}" for k, v in metric.labels)
        if isinstance(metric, Histogram):
            rows.append(
                [metric.name, label_text, metric.kind, metric.count,
                 f"{metric.sum:.6g}", f"{metric.mean():.6g}"]
            )
        else:
            rows.append(
                [metric.name, label_text, metric.kind, "", f"{metric.value:.6g}", ""]
            )
    return format_table(
        ["metric", "labels", "kind", "count", "value/sum", "mean"],
        rows,
        title=title,
    )


def format_bar_chart(
    values: Dict[str, float],
    unit: str = "s",
    width: int = 48,
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (the paper's bar figures).

    >>> print(format_bar_chart({"client": 20.2, "server": 2.5}))
    client  ████████████████████████████████████████████████  20.20s
    server  ██████                                             2.50s
    """
    if not values:
        raise ValueError("bar chart needs at least one value")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar chart values must be non-negative")
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    value_width = max(len(f"{value:.2f}") for value in values.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = int(round(width * value / peak))
        bar = "█" * filled
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{value:>{value_width}.2f}{unit}"
        )
    return "\n".join(lines)
