"""Accuracy-vs-deadline sweep for multi-exit models (Edgent-style).

For each multi-exit model we sweep a grid of completion deadlines at
several bandwidths and record the joint (split, exit) pair the optimizer
picks per deadline (:meth:`~repro.core.partition.PartitionOptimizer.
choose_under_deadline`).  The claims to preserve:

* at a fixed bandwidth, tightening the deadline never moves the chosen
  exit *later* — accuracy degrades monotonically as the SLO tightens;
* a generous enough deadline always picks the full network (the final
  exit, at full accuracy);
* at a fixed deadline, the chosen split shifts with bandwidth — slow
  links push the split toward smaller features;
* every choice marked feasible actually meets its deadline.

The deadline grid is derived from the model's own (split, exit) estimates
across all swept bandwidths: one mark just above each exit's feasibility
threshold (the fastest pair reaching that exit) per bandwidth, plus one
below the global fastest pair and one above the global slowest — so the
sweep always shows the infeasible fallback region, *every* exit
transition, and the full-network plateau, whatever the model's scale.
Everything is analytic (predictor fits are deterministically seeded), so
same-seed runs render the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.eval import calibration
from repro.eval.fig8 import make_optimizer
from repro.eval.reporting import format_table
from repro.eval.scenarios import Testbed, build_paper_model
from repro.nn.zoo import EXIT_MODELS

#: bandwidths swept by default (Mbps); the paper's 30 Mbps in the middle
DEFAULT_BANDWIDTHS_MBPS = (5.0, 30.0, 100.0)


@dataclass
class AccuracyPoint:
    """One (deadline, bandwidth) cell of one model's sweep."""

    model: str
    bandwidth_mbps: float
    deadline_ms: float
    split_label: str
    split_index: int
    exit_name: str
    exit_index: int
    accuracy: float
    predicted_seconds: float
    feasible: bool


def deadline_grid_ms(probe_choices) -> List[float]:
    """A data-driven deadline grid (ms) hitting every exit transition.

    From each bandwidth's full estimate sweep: one mark 2% above each
    exit's feasibility threshold (the fastest pair reaching that exit) —
    a deadline where that exit is just feasible — plus one mark at 80% of
    the global fastest pair (nothing feasible: the fallback region) and
    one at 120% of the global slowest (everything feasible: the full
    network wins).  Rounded to microseconds so rendered bytes are stable.
    """
    marks = set()
    totals: List[float] = []
    for choice in probe_choices:
        threshold_by_exit: Dict[str, float] = {}
        for pair in choice.estimates:
            totals.append(pair.total_seconds)
            name = pair.exit.name
            if (
                name not in threshold_by_exit
                or pair.total_seconds < threshold_by_exit[name]
            ):
                threshold_by_exit[name] = pair.total_seconds
        marks.update(1.02 * seconds for seconds in threshold_by_exit.values())
    marks.add(0.8 * min(totals))
    marks.add(1.2 * max(totals))
    return sorted(round(mark * 1e3, 3) for mark in marks)


def run_fig_accuracy_model(
    model_name: str,
    bandwidths_mbps: Sequence[float] = DEFAULT_BANDWIDTHS_MBPS,
) -> List[AccuracyPoint]:
    """Sweep deadlines x bandwidths for one multi-exit model.

    One shared deadline grid covers every bandwidth (derived from the
    union of estimate sweeps), so fixed-deadline rows compare splits
    across bandwidths directly.
    """
    model = build_paper_model(model_name)
    network = model.network
    optimizer = make_optimizer(model_name)
    links = {
        mbps: Testbed(bandwidth_bps=mbps * 1e6).profile
        for mbps in bandwidths_mbps
    }
    # One probe choice per bandwidth gets the full estimate sweep; the
    # union of sweeps drives the deadline grid.
    probes = {
        mbps: optimizer.choose_under_deadline(network, link, 3600.0)
        for mbps, link in links.items()
    }
    deadlines_ms = deadline_grid_ms(probes.values())
    points: List[AccuracyPoint] = []
    for mbps in bandwidths_mbps:
        for deadline_ms in deadlines_ms:
            choice = optimizer.choose_under_deadline(
                network, links[mbps], deadline_ms / 1e3
            )
            points.append(
                AccuracyPoint(
                    model=model_name,
                    bandwidth_mbps=mbps,
                    deadline_ms=deadline_ms,
                    split_label=choice.point.label,
                    split_index=choice.point.index,
                    exit_name=choice.exit.name,
                    exit_index=choice.exit.index,
                    accuracy=choice.accuracy,
                    predicted_seconds=choice.best.total_seconds,
                    feasible=choice.feasible,
                )
            )
    return points


def run_fig_accuracy(
    models: Sequence[str] = EXIT_MODELS,
    bandwidths_mbps: Sequence[float] = DEFAULT_BANDWIDTHS_MBPS,
    engine=None,
) -> Dict[str, List[AccuracyPoint]]:
    if engine is None:
        return {
            model: run_fig_accuracy_model(model, bandwidths_mbps)
            for model in models
        }
    from repro.exec import Task

    outcomes = engine.run(
        [
            Task.make(
                f"fig_accuracy/{model}",
                "repro.eval.fig_accuracy.run_fig_accuracy_model",
                {
                    "model_name": model,
                    "bandwidths_mbps": list(bandwidths_mbps),
                },
            )
            for model in models
        ]
    )
    return {model: outcome.payload for model, outcome in zip(models, outcomes)}


def format_fig_accuracy(points_by_model: Dict[str, List[AccuracyPoint]]) -> str:
    blocks = []
    for model, points in points_by_model.items():
        rows = [
            [
                f"{point.bandwidth_mbps:g}",
                f"{point.deadline_ms:.3f}",
                point.split_label,
                point.exit_name,
                f"{point.accuracy:.3f}",
                f"{point.predicted_seconds * 1e3:.3f}",
                "yes" if point.feasible else "no",
            ]
            for point in points
        ]
        blocks.append(
            format_table(
                [
                    "bw_mbps",
                    "deadline_ms",
                    "split",
                    "exit",
                    "accuracy",
                    "predicted_ms",
                    "feasible",
                ],
                rows,
                title=f"Accuracy vs deadline — {model}",
            )
        )
    return "\n\n".join(blocks)


def check_fig_accuracy_shape(
    points_by_model: Dict[str, List[AccuracyPoint]]
) -> List[str]:
    """Violations of the accuracy-scaling claims."""
    violations: List[str] = []
    split_varied = False
    multi_bandwidth = False
    for model, points in points_by_model.items():
        by_bw: Dict[float, List[AccuracyPoint]] = {}
        for point in points:
            by_bw.setdefault(point.bandwidth_mbps, []).append(point)
        for mbps, sweep in by_bw.items():
            sweep = sorted(sweep, key=lambda point: point.deadline_ms)
            exits = [point.exit_index for point in sweep]
            if any(a > b for a, b in zip(exits, exits[1:])):
                violations.append(
                    f"{model}@{mbps:g}Mbps: a tighter deadline chose a "
                    f"later exit ({exits})"
                )
            accuracies = [point.accuracy for point in sweep]
            if any(a > b + 1e-12 for a, b in zip(accuracies, accuracies[1:])):
                violations.append(
                    f"{model}@{mbps:g}Mbps: accuracy not monotone in "
                    f"deadline ({accuracies})"
                )
            last = sweep[-1]
            if not (last.exit_name == "final" and last.feasible):
                violations.append(
                    f"{model}@{mbps:g}Mbps: most generous deadline picked "
                    f"{last.exit_name} (feasible={last.feasible}), not the "
                    "full network"
                )
            for point in sweep:
                if point.feasible and (
                    point.predicted_seconds > point.deadline_ms / 1e3
                ):
                    violations.append(
                        f"{model}@{mbps:g}Mbps: 'feasible' choice at "
                        f"{point.deadline_ms}ms predicts "
                        f"{point.predicted_seconds * 1e3:.3f}ms"
                    )
        if len(by_bw) > 1:
            multi_bandwidth = True
            by_deadline: Dict[float, set] = {}
            for point in points:
                by_deadline.setdefault(point.deadline_ms, set()).add(
                    point.split_index
                )
            if any(len(splits) > 1 for splits in by_deadline.values()):
                split_varied = True
    # Bandwidth moves the split somewhere in the sweep.  Checked across
    # models, not per model: for GoogLeNet one split (1st_pool) genuinely
    # dominates at every bandwidth — the same Fig. 8 finding the fig8
    # checks lock — so demanding per-model variation would be wrong.
    if multi_bandwidth and not split_varied:
        violations.append(
            "no model's chosen split ever varied with bandwidth"
        )
    return violations
