"""Streaming workloads: per-frame inference over a camera feed.

The paper's §I motivates edge servers with continuous video processing.
Here the same generic snapshot machinery serves a video app: each camera
frame fires a ``frame`` event that is offloaded; with the session cache the
per-frame payload is a delta carrying (essentially) just the compressed
frame.  :func:`run_stream` replays a frame source at a given FPS in one of
three modes and reports achieved throughput, per-frame latency and result
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.eval import calibration
from repro.eval.scenarios import build_paper_model
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.sim import SeededRng, Simulator
from repro.web.app import make_video_app
from repro.web.values import ImageData

#: a camera frame's compressed (JPEG-like) size on the wire
FRAME_ENCODED_BYTES = 60_000


@dataclass
class FrameRecord:
    """One frame's journey."""

    index: int
    captured_at: float
    completed_at: float
    label: int
    expected_label: int
    snapshot_kind: str = ""

    @property
    def latency_seconds(self) -> float:
        return self.completed_at - self.captured_at

    @property
    def correct(self) -> bool:
        return self.label == self.expected_label


@dataclass
class StreamReport:
    """Outcome of one streaming run."""

    mode: str
    model_name: str
    source_fps: float
    records: List[FrameRecord] = field(default_factory=list)
    finished_at: float = 0.0

    @property
    def achieved_fps(self) -> float:
        if not self.records or self.finished_at <= 0:
            return 0.0
        return len(self.records) / self.finished_at

    @property
    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency_seconds for r in self.records) / len(self.records)

    @property
    def all_correct(self) -> bool:
        return all(record.correct for record in self.records)

    @property
    def keeps_up(self) -> bool:
        """Does processing sustain the source rate (within 10%)?"""
        return self.achieved_fps >= 0.9 * self.source_fps


def run_stream(
    model_name: str = "smallnet",
    frames: int = 6,
    fps: float = 2.0,
    mode: str = "offload",
    use_session_cache: bool = True,
    bandwidth_bps: float = calibration.PAPER_BANDWIDTH_BPS,
    server_speedup: float = 1.0,
    seed: int = 0,
) -> StreamReport:
    """Replay ``frames`` camera frames at ``fps`` in the given mode.

    Modes: ``client`` (process every frame locally) or ``offload``
    (snapshot-offload every frame; the model is pre-sent first).
    Frames are never dropped: if processing falls behind, later frames
    queue and per-frame latency grows — visible in the report.
    """
    if mode not in ("client", "offload"):
        raise ValueError(f"unknown streaming mode {mode!r}")
    sim = Simulator()
    model = build_paper_model(model_name)
    costs = network_costs(model.network)
    rng = SeededRng(seed, f"stream/{model_name}")
    shape = model.network.input_shape
    report = StreamReport(mode=mode, model_name=model_name, source_fps=fps)

    channel = Channel(
        sim, "client", "edge", NetemProfile(bandwidth_bps=bandwidth_bps, latency_s=0.001)
    )
    server = EdgeServer(sim, Device(sim, edge_server_x86(server_speedup)), "edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(),
    )
    client.start_app(make_video_app(model), presend=(mode == "offload"))
    if mode == "offload":
        client.mark_offload_point("frame", "camera")
        sim.run()  # wait out the pre-send so the stream starts warm

    frame_pixels = [
        ImageData(
            rng.uniform_array(shape, 0, 255), encoded_bytes=FRAME_ENCODED_BYTES
        )
        for _ in range(frames)
    ]
    expected = [
        int(np.argmax(model.inference(pixels.data))) for pixels in frame_pixels
    ]
    stream_started = sim.now

    def camera():
        for index, pixels in enumerate(frame_pixels):
            due = stream_started + index / fps
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            captured_at = sim.now
            client.runtime.globals["frame"] = pixels
            kind = ""
            if mode == "client":
                client.runtime.dispatch("frame", "camera")
                seconds = client.device.forward_seconds(costs)
                yield client.device.execute(seconds, label="frame-dnn")
            else:
                client.runtime.dispatch("frame", "camera")
                event = client.take_intercepted()
                outcome = yield from client.offload(
                    event, server_costs=costs, use_session_cache=use_session_cache
                )
                kind = outcome.snapshot.kind
            report.records.append(
                FrameRecord(
                    index=index,
                    captured_at=captured_at,
                    completed_at=sim.now,
                    label=client.runtime.globals.get("result_label"),
                    expected_label=expected[index],
                    snapshot_kind=kind,
                )
            )
        report.finished_at = sim.now - stream_started

    process = sim.spawn(camera(), label="camera")
    sim.run_until(lambda: process.triggered)
    if process.ok is False:
        raise process.value
    return report
