"""Chrome-trace export of session timelines.

Turns a :class:`~repro.core.session.SessionResult` into Chrome Trace Event
format (the JSON consumed by ``chrome://tracing`` / Perfetto), with one
track per location — client CPU, network, server CPU — so the paper's
Fig. 7 breakdown can be inspected interactively.

Spans are reconstructed from the phase breakdown in execution order
(capture → uplink → restore → exec → capture → downlink → restore), which
matches the actual timeline because the protocol is strictly sequential
within one session.

Sessions also record the same timeline live into their simulator's
:class:`~repro.obs.spans.SpanRecorder` (``sim.spans``); use
:func:`recorder_to_trace` / :func:`write_span_trace` to export everything a
simulation traced — including spans other subsystems emitted — rather than
reconstructing from one result.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.core.session import PHASE_TRACKS, SessionResult
from repro.obs.spans import SpanRecorder, spans_to_trace

#: (phase key, display name, track) — canonical order lives in core.session
_PHASE_TRACKS = PHASE_TRACKS

_TRACK_IDS = {"client": 1, "network": 2, "server": 3}


def session_to_events(result: SessionResult, pid: int = 1) -> List[Dict]:
    """Trace events for one session (complete 'X' events, µs units)."""
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"{result.model_name} [{result.mode}]"},
        }
    ]
    for track, tid in _TRACK_IDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    cursor = result.started_at
    phases = result.phases.as_dict()
    for key, label, track in _PHASE_TRACKS:
        duration = phases.get(key, 0.0)
        if duration <= 0:
            continue
        events.append(
            {
                "name": label,
                "cat": key,
                "ph": "X",
                "pid": pid,
                "tid": _TRACK_IDS[track],
                "ts": round(cursor * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "args": {"seconds": duration},
            }
        )
        cursor += duration
    return events


def sessions_to_trace(results: Sequence[SessionResult]) -> Dict:
    """A full Chrome trace document for several sessions (one pid each)."""
    events: List[Dict] = []
    for index, result in enumerate(results, start=1):
        events.extend(session_to_events(result, pid=index))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, results: Sequence[SessionResult]) -> str:
    """Write a trace JSON file; returns the path."""
    document = sessions_to_trace(results)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return path


def recorder_to_trace(
    recorder: SpanRecorder, pid: int = 1, process_name: str = "simulation"
) -> Dict:
    """A Chrome trace document of everything a simulator's recorder holds."""
    return spans_to_trace(recorder.spans, pid=pid, process_name=process_name)


def write_span_trace(path: str, recorder: SpanRecorder) -> str:
    """Write a simulator's recorded spans as a trace JSON file."""
    document = recorder_to_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
    return path
