"""Server-side model artifact storage.

The edge server "saves the files and sends an acknowledgement (ACK)"
(paper §III.B.1).  :class:`ModelStore` is that storage, grown into a
multi-tenant artifact store:

* **Per-model uploads** — a manifest registers the expected file list,
  received files are verified against it (membership + checksum), and the
  server only ACKs once every listed file has arrived.
* **Content-addressed segments** — file bytes are held once per checksum,
  shared across models.  Two models that ship the same parameter blob
  (e.g. two rear halves of one network split at different layers) occupy
  the bytes once, and :meth:`missing_from_manifest` answers a segment-level
  handshake: exactly the files whose bytes this store does not hold, so a
  client can upload only those.
* **LRU eviction under a memory budget** — with ``memory_budget_bytes``
  set, the least-recently-used model entries are evicted when resident
  segment bytes exceed the budget.  Eviction *demotes* an entry: the
  runnable model handle is dropped and the entry's segments are released
  (freed only when no other resident model shares them), but the manifest
  — the file names and checksums — stays known.  A later request for the
  model pays a re-attach and a *partial* re-upload of whichever segments
  were actually freed, instead of a full pre-send.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.nn.model import Model, ModelFile


class ModelStoreError(RuntimeError):
    """Raised on checksum mismatches or incomplete-model access."""


@dataclass
class StoredModel:
    """Receiving-side state for one model upload."""

    model_id: str
    manifest: List[ModelFile]
    received: Set[str] = field(default_factory=set)
    #: the runnable model object, attached when the upload completes
    model: Optional[Model] = None
    #: params fingerprint, computed once when the model is attached — the
    #: content address the fleet's digest handshake answers from
    fingerprint: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.received == {file.name for file in self.manifest}

    @property
    def missing(self) -> List[str]:
        return sorted({file.name for file in self.manifest} - self.received)

    @property
    def received_bytes(self) -> int:
        by_name = {file.name: file for file in self.manifest}
        return sum(by_name[name].size_bytes for name in self.received)

    @property
    def total_bytes(self) -> int:
        return sum(file.size_bytes for file in self.manifest)


@dataclass
class _Segment:
    """One content-addressed blob: held once, referenced by many models."""

    size_bytes: int
    refs: Set[str] = field(default_factory=set)


class ModelStore:
    """File storage for uploaded models on an edge server.

    ``memory_budget_bytes`` bounds the resident segment bytes; ``None``
    (the default) disables eviction.  A single model larger than the
    budget is still admitted — everything else is evicted around it and
    the gauge shows the overrun — because refusing it would deadlock the
    upload protocol.

    ``metrics``/``server`` wire the store into an observability registry
    (``store_bytes_resident`` gauge, ``store_evictions_total`` counter);
    both are optional so unit tests can build bare stores.
    """

    def __init__(
        self,
        memory_budget_bytes: Optional[int] = None,
        *,
        metrics=None,
        server: str = "",
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        self.memory_budget_bytes = memory_budget_bytes
        self._models: Dict[str, StoredModel] = {}
        self._segments: Dict[str, _Segment] = {}
        #: model ids, least-recently-used first
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self.evictions = 0
        self._resident_gauge = None
        self._evict_counter = None
        if metrics is not None:
            self._resident_gauge = metrics.gauge(
                "store_bytes_resident",
                help="model segment bytes resident in the store",
                server=server,
            )
            self._evict_counter = metrics.counter(
                "store_evictions_total",
                help="model entries demoted by LRU eviction under the "
                "memory budget",
                server=server,
            )

    # -- capacity ----------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        """Bytes of unique segments currently held (dedup counts once)."""
        return sum(segment.size_bytes for segment in self._segments.values())

    def has_segment(self, checksum: str) -> bool:
        return checksum in self._segments

    def missing_from_manifest(self, files: List[ModelFile]) -> List[str]:
        """Names of manifest files whose bytes this store does not hold.

        The segment-level handshake answer: content-addressed, so a file is
        "present" whenever *any* stored model already supplied bytes with
        the same checksum, whatever that model named them.
        """
        return [file.name for file in files if file.checksum not in self._segments]

    def _touch(self, model_id: str) -> None:
        self._lru[model_id] = None
        self._lru.move_to_end(model_id)

    def _record_resident(self) -> None:
        if self._resident_gauge is not None:
            self._resident_gauge.set(float(self.resident_bytes))

    def _enforce_budget(self, protect: str) -> None:
        budget = self.memory_budget_bytes
        if budget is None or self.resident_bytes <= budget:
            return
        # Candidates least-recently-used first; the entry currently being
        # uploaded is protected, else the budget loop would eat its own tail.
        for victim in [mid for mid in self._lru if mid != protect]:
            if self.resident_bytes <= budget:
                break
            entry = self._models[victim]
            if not entry.received and entry.model is None:
                continue  # already cold; nothing to free
            if not entry.complete:
                continue  # mid-upload: the in-flight transfer pins its bytes
            self._demote(victim)
            self.evictions += 1
            if self._evict_counter is not None:
                self._evict_counter.inc()

    def _demote(self, model_id: str) -> None:
        """Evict one entry: drop the handle, release its segment refs.

        Segments still referenced by another resident model survive (the
        bytes are shared); the rest are freed.  The entry itself stays —
        files known, model cold — so a later re-upload is answered at
        segment granularity and only pays for what was actually freed.
        """
        entry = self._models[model_id]
        entry.model = None
        entry.fingerprint = None
        by_name = {file.name: file for file in entry.manifest}
        for name in sorted(entry.received):
            segment = self._segments.get(by_name[name].checksum)
            if segment is None:
                continue
            segment.refs.discard(model_id)
            if not segment.refs:
                del self._segments[by_name[name].checksum]
        entry.received.clear()
        self._record_resident()

    def _claim_known_segments(self, entry: StoredModel) -> None:
        """Cross-model dedup: mark manifest files whose bytes are resident."""
        for file in entry.manifest:
            if file.name in entry.received:
                continue
            segment = self._segments.get(file.checksum)
            if segment is not None:
                segment.refs.add(entry.model_id)
                entry.received.add(file.name)

    # -- uploads -----------------------------------------------------------------
    def begin_upload(self, model_id: str, manifest: List[ModelFile]) -> StoredModel:
        """Register an upload; idempotent only for *identical* manifests.

        Re-registering a model id with a different file list is a stale
        manifest (a model update reusing an old id) and raises rather than
        silently serving the old files.  Files whose bytes are already
        resident under another model are claimed immediately — the
        cross-model dedup that makes shared parameter blobs free.
        """
        existing = self._models.get(model_id)
        if existing is not None:
            if list(manifest) != existing.manifest:
                raise ModelStoreError(
                    f"manifest mismatch for re-registered model {model_id!r}: "
                    f"{len(manifest)} files offered, "
                    f"{len(existing.manifest)} on record"
                )
            entry = existing
        else:
            entry = StoredModel(model_id=model_id, manifest=list(manifest))
            self._models[model_id] = entry
        self._touch(model_id)
        self._claim_known_segments(entry)
        return entry

    def receive_file(self, model_id: str, file: ModelFile) -> StoredModel:
        """Store one received file, verifying it against the manifest."""
        entry = self._models.get(model_id)
        if entry is None:
            raise ModelStoreError(f"no upload registered for model {model_id!r}")
        expected = {f.name: f for f in entry.manifest}.get(file.name)
        if expected is None:
            raise ModelStoreError(
                f"file {file.name!r} is not in the manifest of {model_id!r}"
            )
        if expected.checksum != file.checksum:
            raise ModelStoreError(
                f"checksum mismatch for {file.name!r}: "
                f"expected {expected.checksum}, got {file.checksum}"
            )
        segment = self._segments.get(file.checksum)
        if segment is None:
            segment = _Segment(size_bytes=expected.size_bytes)
            self._segments[file.checksum] = segment
        segment.refs.add(model_id)
        entry.received.add(file.name)
        self._touch(model_id)
        self._enforce_budget(protect=model_id)
        self._record_resident()
        return entry

    def attach_model(self, model_id: str, model: Model) -> None:
        """Attach the runnable model once its upload is complete.

        The model is fingerprinted here, at store time: the digest is the
        expensive part of every plan-cache key and of the fleet's
        ``MODEL_QUERY`` handshake, and paying it once on attach (instead of
        on every lookup) is what makes warm plan loads and handshake
        answers near-free.
        """
        entry = self._models.get(model_id)
        if entry is None:
            raise ModelStoreError(f"no upload registered for model {model_id!r}")
        if not entry.complete:
            raise ModelStoreError(
                f"model {model_id!r} incomplete; missing {entry.missing}"
            )
        entry.model = model
        entry.fingerprint = model.fingerprint()
        self._touch(model_id)

    # -- queries -----------------------------------------------------------------
    def has_complete(self, model_id: str) -> bool:
        entry = self._models.get(model_id)
        return entry is not None and entry.complete

    def fingerprint_of(self, model_id: str) -> Optional[str]:
        """The stored model's params fingerprint (None until attached)."""
        entry = self._models.get(model_id)
        return entry.fingerprint if entry is not None else None

    def matches_fingerprint(self, model_id: str, fingerprint: str) -> bool:
        """Digest handshake: is a runnable model with this digest stored?"""
        entry = self._models.get(model_id)
        hit = (
            entry is not None
            and entry.complete
            and entry.model is not None
            and entry.fingerprint == fingerprint
        )
        if hit:
            self._touch(model_id)
        return hit

    def get_model(self, model_id: str) -> Model:
        entry = self._models.get(model_id)
        if entry is None or entry.model is None:
            raise ModelStoreError(f"model {model_id!r} is not available")
        self._touch(model_id)
        return entry.model

    def entry(self, model_id: str) -> Optional[StoredModel]:
        """The raw entry for inspection (tests, reports); None if unknown."""
        return self._models.get(model_id)

    def stored_ids(self) -> List[str]:
        return sorted(self._models)

    def evict(self, model_id: str) -> None:
        """Forget a model entirely: handle, segments *and* manifest."""
        if model_id not in self._models:
            return
        self._demote(model_id)
        del self._models[model_id]
        self._lru.pop(model_id, None)
        self._record_resident()
