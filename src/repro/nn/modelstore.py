"""Server-side model file storage.

The edge server "saves the files and sends an acknowledgement (ACK)"
(paper §III.B.1).  :class:`ModelStore` is that storage: a per-model set of
received files, with completeness checks against the manifest so the server
only ACKs once every listed file has arrived, and checksum verification so
corrupted or mismatched uploads are rejected rather than silently used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.nn.model import Model, ModelFile


class ModelStoreError(RuntimeError):
    """Raised on checksum mismatches or incomplete-model access."""


@dataclass
class StoredModel:
    """Receiving-side state for one model upload."""

    model_id: str
    manifest: List[ModelFile]
    received: Set[str] = field(default_factory=set)
    #: the runnable model object, attached when the upload completes
    model: Optional[Model] = None
    #: params fingerprint, computed once when the model is attached — the
    #: content address the fleet's digest handshake answers from
    fingerprint: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.received == {file.name for file in self.manifest}

    @property
    def missing(self) -> List[str]:
        return sorted({file.name for file in self.manifest} - self.received)

    @property
    def received_bytes(self) -> int:
        by_name = {file.name: file for file in self.manifest}
        return sum(by_name[name].size_bytes for name in self.received)


class ModelStore:
    """File storage for uploaded models on an edge server."""

    def __init__(self) -> None:
        self._models: Dict[str, StoredModel] = {}

    def begin_upload(self, model_id: str, manifest: List[ModelFile]) -> StoredModel:
        """Register an upload; idempotent for repeated manifests."""
        existing = self._models.get(model_id)
        if existing is not None:
            return existing
        entry = StoredModel(model_id=model_id, manifest=list(manifest))
        self._models[model_id] = entry
        return entry

    def receive_file(self, model_id: str, file: ModelFile) -> StoredModel:
        """Store one received file, verifying it against the manifest."""
        entry = self._models.get(model_id)
        if entry is None:
            raise ModelStoreError(f"no upload registered for model {model_id!r}")
        expected = {f.name: f for f in entry.manifest}.get(file.name)
        if expected is None:
            raise ModelStoreError(
                f"file {file.name!r} is not in the manifest of {model_id!r}"
            )
        if expected.checksum != file.checksum:
            raise ModelStoreError(
                f"checksum mismatch for {file.name!r}: "
                f"expected {expected.checksum}, got {file.checksum}"
            )
        entry.received.add(file.name)
        return entry

    def attach_model(self, model_id: str, model: Model) -> None:
        """Attach the runnable model once its upload is complete.

        The model is fingerprinted here, at store time: the digest is the
        expensive part of every plan-cache key and of the fleet's
        ``MODEL_QUERY`` handshake, and paying it once on attach (instead of
        on every lookup) is what makes warm plan loads and handshake
        answers near-free.
        """
        entry = self._models.get(model_id)
        if entry is None:
            raise ModelStoreError(f"no upload registered for model {model_id!r}")
        if not entry.complete:
            raise ModelStoreError(
                f"model {model_id!r} incomplete; missing {entry.missing}"
            )
        entry.model = model
        entry.fingerprint = model.fingerprint()

    def has_complete(self, model_id: str) -> bool:
        entry = self._models.get(model_id)
        return entry is not None and entry.complete

    def fingerprint_of(self, model_id: str) -> Optional[str]:
        """The stored model's params fingerprint (None until attached)."""
        entry = self._models.get(model_id)
        return entry.fingerprint if entry is not None else None

    def matches_fingerprint(self, model_id: str, fingerprint: str) -> bool:
        """Digest handshake: is a runnable model with this digest stored?"""
        entry = self._models.get(model_id)
        return (
            entry is not None
            and entry.complete
            and entry.model is not None
            and entry.fingerprint == fingerprint
        )

    def get_model(self, model_id: str) -> Model:
        entry = self._models.get(model_id)
        if entry is None or entry.model is None:
            raise ModelStoreError(f"model {model_id!r} is not available")
        return entry.model

    def stored_ids(self) -> List[str]:
        return sorted(self._models)

    def evict(self, model_id: str) -> None:
        self._models.pop(model_id, None)
