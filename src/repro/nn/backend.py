"""Pluggable kernel backends: every hot kernel call behind one interface.

The DNN kernels used to be a single fixed numpy path spread across the
layer classes and the plan steps.  This module abstracts them — conv
im2col GEMM, dense matmul, pooling, activation, LRN, and the eltwise/
concat joins — behind :class:`KernelBackend`, with two registered
implementations:

* ``reference`` — the exact numpy calls the layers always made, in the
  same order.  Plans executed under it are *bitwise identical* to the
  pre-backend code (the equivalence suite locks this against the raw
  layer walk).
* ``tuned`` — float32 end-to-end (the reference LRN and average-pool
  paths silently upcast to float64; ``tuned`` replaces them with
  preallocated-scratch float32 kernels), a row-blocked threaded GEMM for
  multi-core hosts, and dequant-free integer GEMM support for quantized
  plan steps (``supports_int_gemm``).  Outputs stay within 1e-4 of the
  reference and preserve every top-1 label across the zoo.

Backend selection mirrors the ``--no-optimize`` plumbing: the CLI's
``--backend`` flag sets both a process-wide override and the
:data:`BACKEND_ENV` environment variable, so forked pool workers inherit
the choice.  The active backend name is part of the result-cache and
plan-cache keys (see :mod:`repro.exec.cache` and
:func:`repro.nn.plan.plan_cache_key`) — equivalence between backends is a
*tested claim*, and a shared cache entry would mask a regression.

Kernel-call counters are exported as ``backend_kernel_calls_total``
(labelled by backend and op) via :func:`record_backend_metrics`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import im2col as _im2col
from repro.nn.tensor import im2col_batch as _im2col_batch
from repro.nn.tensor import max_pool_strided, pool_patches

#: process-wide backend choice inherited by forked pool workers
#: (the CLI's ``--backend`` exports it, mirroring ``REPRO_NO_OPTIMIZE``)
BACKEND_ENV = "REPRO_BACKEND"

#: env override for the tuned backend's GEMM thread budget
BACKEND_THREADS_ENV = "REPRO_BACKEND_THREADS"

DEFAULT_BACKEND = "reference"

_BACKEND_OVERRIDE: Optional[str] = None


class BackendError(ValueError):
    """An unknown backend name was requested."""


def backend_names() -> Tuple[str, ...]:
    """The registered backend names, registration order."""
    return tuple(_REGISTRY)


def active_backend_name() -> str:
    """The process-wide backend: override first, then env, then default."""
    if _BACKEND_OVERRIDE is not None:
        return _BACKEND_OVERRIDE
    name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r} in ${BACKEND_ENV}; "
            f"choose from {sorted(_REGISTRY)}"
        )
    return name


def set_backend(name: Optional[str]) -> None:
    """Force the backend process-wide; ``None`` restores the env default."""
    global _BACKEND_OVERRIDE
    if name is not None and name not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        )
    _BACKEND_OVERRIDE = name


def get_backend(name: str) -> "KernelBackend":
    """The (memoized) backend instance registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def active_backend() -> "KernelBackend":
    """The instance for :func:`active_backend_name`."""
    return get_backend(active_backend_name())


def effective_threads() -> int:
    """The tuned backend's GEMM thread budget on this host.

    ``REPRO_BACKEND_THREADS`` wins; otherwise the CPU count.  A budget of
    1 disables the threaded GEMM path entirely (a thread pool cannot
    outrun a single core).
    """
    raw = os.environ.get(BACKEND_THREADS_ENV)
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


class KernelBackend:
    """The kernel interface plans and layers execute through.

    Every method mirrors one hot call site of the pre-backend code; the
    base class *is* the reference implementation (the same numpy
    expressions, same order, so results are bitwise identical to the
    original layer walk).  Subclasses override individual kernels.

    Instances are process-wide singletons and keep per-op call counters
    in :attr:`calls` — cheap enough next to any kernel, and what
    ``backend_kernel_calls_total`` exports.
    """

    name = "reference"
    #: whether :meth:`quantized_gemm` may take the dequant-free integer path
    supports_int_gemm = False

    def __init__(self) -> None:
        self.calls: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1

    # -- GEMM ------------------------------------------------------------------
    def gemm(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``a @ b`` (2-D x 1-D/2-D/broadcast 3-D), optionally into ``out``."""
        self._count("gemm")
        if out is not None:
            np.matmul(a, b, out=out)
            return out
        return np.matmul(a, b)

    # -- im2col ----------------------------------------------------------------
    def im2col(self, x, kernel, stride, pad, out=None) -> np.ndarray:
        self._count("im2col")
        return _im2col(x, kernel, stride, pad, out=out)

    def im2col_batch(self, xs, kernel, stride, pad) -> np.ndarray:
        self._count("im2col")
        return _im2col_batch(xs, kernel, stride, pad)

    # -- activation ------------------------------------------------------------
    def relu(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        self._count("relu")
        if out is not None:
            np.maximum(x, 0.0, out=out)
            return out
        return np.maximum(x, 0.0).astype(np.float32, copy=False)

    def relu_inplace(self, x: np.ndarray) -> np.ndarray:
        self._count("relu")
        np.maximum(x, 0.0, out=x)
        return x

    # -- pooling ---------------------------------------------------------------
    def pool(self, layer, x: np.ndarray, out=None) -> np.ndarray:
        """One pooling layer forward (the exact reference control flow)."""
        self._count("pool")
        if layer.mode == "max" and out is not None:
            result = max_pool_strided(
                x, layer.kernel, layer.stride, layer.pad, out=out
            )
            return result.reshape(layer.out_shape)
        patches, _ = pool_patches(x, layer.kernel, layer.stride, layer.pad)
        if layer.mode == "max":
            result = patches.max(axis=(1, 2))
        else:
            result = self._avg_reduce(patches)
        result = result.reshape(layer.out_shape).astype(np.float32, copy=False)
        if out is not None:
            target = out.reshape(layer.out_shape)
            np.copyto(target, result)
            return target
        return result

    def _avg_reduce(self, patches: np.ndarray) -> np.ndarray:
        # Reference semantics: the int64 window count silently promotes
        # the divide to float64 (kept verbatim for bitwise identity).
        finite = np.isfinite(patches)
        total = np.where(finite, patches, 0.0).sum(axis=(1, 2))
        count = finite.sum(axis=(1, 2))
        return total / np.maximum(count, 1)

    def max_pool_batch(self, layer, xs: np.ndarray) -> np.ndarray:
        self._count("pool")
        count = xs.shape[0]
        folded = xs.reshape((-1,) + xs.shape[2:])
        pooled = max_pool_strided(folded, layer.kernel, layer.stride, layer.pad)
        return pooled.reshape((count,) + layer.out_shape)

    # -- LRN -------------------------------------------------------------------
    def lrn(self, layer, x: np.ndarray) -> np.ndarray:
        """Across-channel LRN, one sample (reference: float64 prefix sums)."""
        self._count("lrn")
        channels = x.shape[0]
        half = layer.local_size // 2
        squared = x.astype(np.float64) ** 2
        prefix = np.concatenate(
            [np.zeros((1,) + x.shape[1:]), np.cumsum(squared, axis=0)], axis=0
        )
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        window_sums = prefix[hi] - prefix[lo]
        scale = (
            layer.k + (layer.alpha / layer.local_size) * window_sums
        ) ** layer.beta
        return (x / scale).astype(np.float32)

    def lrn_batch(self, layer, xs: np.ndarray) -> np.ndarray:
        """LRN across a batch: the per-sample math applied along axis 1."""
        self._count("lrn")
        channels = xs.shape[1]
        half = layer.local_size // 2
        squared = xs.astype(np.float64) ** 2
        prefix = np.concatenate(
            [
                np.zeros((xs.shape[0], 1) + xs.shape[2:]),
                np.cumsum(squared, axis=1),
            ],
            axis=1,
        )
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        window_sums = prefix[:, hi] - prefix[:, lo]
        scale = (
            layer.k + (layer.alpha / layer.local_size) * window_sums
        ) ** layer.beta
        return (xs / scale).astype(np.float32)

    # -- joins -----------------------------------------------------------------
    def concat(
        self, inputs: Sequence[np.ndarray], axis: int, out=None
    ) -> np.ndarray:
        self._count("concat")
        if out is not None:
            np.concatenate(list(inputs), axis=axis, out=out)
            return out
        return np.concatenate(list(inputs), axis=axis)

    def eltwise_sum(self, inputs: Sequence[np.ndarray], out=None) -> np.ndarray:
        self._count("eltwise")
        if out is not None:
            np.add(inputs[0], inputs[1], out=out)
        else:
            out = inputs[0] + inputs[1]
        for extra in inputs[2:]:
            out += extra
        return out

    # -- quantized GEMM --------------------------------------------------------
    def quantized_gemm(self, qmatrix, x: np.ndarray, out=None) -> np.ndarray:
        """``dequantize(qmatrix) @ x`` without materializing per call.

        The reference path multiplies against the lazily cached float32
        dequantized matrix (BLAS-fast, deterministic); backends with
        ``supports_int_gemm`` may instead quantize ``x`` and accumulate
        integer products, never touching float weights (see
        :class:`TunedBackend`).
        """
        self._count("quantized_gemm")
        return self.gemm(qmatrix.dequantized(), x, out=out)


class TunedBackend(KernelBackend):
    """float32 end-to-end kernels with blocked/threaded GEMM.

    The reference LRN and average-pool kernels promote to float64
    mid-expression; on GoogLeNet the two LRN layers alone are ~28% of the
    compiled plan's forward.  This backend keeps every kernel in float32
    (preallocated scratch, in-place ops), splits large GEMMs across a
    thread pool when the host has cores to spare (numpy releases the GIL
    inside matmul), and supports dequant-free integer GEMM for quantized
    plan steps.  Results are within 1e-4 relative error of the reference
    and preserve top-1 labels — asserted by the equivalence suite.
    """

    name = "tuned"
    supports_int_gemm = True

    #: row-block size for the threaded GEMM (large enough that per-task
    #: overhead is noise next to the block's matmul)
    GEMM_BLOCK_ROWS = 64
    #: below this output-element count a GEMM is not worth fanning out
    GEMM_THREAD_MIN_ELEMENTS = 1 << 16
    #: largest codes.size * columns product routed to the integer path
    #: (numpy integer matmul has no BLAS behind it)
    INT_GEMM_LIMIT = 1 << 22

    def __init__(self) -> None:
        super().__init__()
        self.threads = effective_threads()
        self._pool = None
        self._scratch: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}

    def scratch(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        """A preallocated float32 scratch buffer, reused per (tag, shape)."""
        key = (tag, tuple(shape))
        buffer = self._scratch.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=np.float32)
            self._scratch[key] = buffer
        return buffer

    # -- GEMM ------------------------------------------------------------------
    def gemm(self, a, b, out=None):
        if (
            self.threads > 1
            and a.ndim == 2
            and b.ndim == 2
            and a.shape[0] >= 2 * self.GEMM_BLOCK_ROWS
            and a.shape[0] * b.shape[1] >= self.GEMM_THREAD_MIN_ELEMENTS
        ):
            return self._threaded_gemm(a, b, out)
        return super().gemm(a, b, out=out)

    def _threaded_gemm(self, a, b, out):
        """Row-blocked ``a @ b`` across the thread pool.

        Each task multiplies a contiguous row block of ``a`` straight into
        its slice of ``out`` — the split is over independent output rows,
        so there is no reduction step and no inter-thread scratch beyond
        the output itself (BLAS may still reorder accumulation within a
        row, which is why ``tuned`` is tolerance-locked, not bitwise).
        """
        self._count("gemm")
        self._count("gemm_threaded")
        if out is None:
            # Fresh, not scratch: plan values can outlive the call, and a
            # shared buffer would be clobbered by the next same-shape GEMM.
            out = np.empty((a.shape[0], b.shape[1]), dtype=np.float32)
        pool = self._gemm_pool()
        rows = a.shape[0]
        block = max(self.GEMM_BLOCK_ROWS, -(-rows // self.threads))
        futures = [
            pool.submit(np.matmul, a[lo : lo + block], b, out=out[lo : lo + block])
            for lo in range(0, rows, block)
        ]
        for future in futures:
            future.result()
        return out

    def _gemm_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-gemm"
            )
        return self._pool

    # -- pooling ---------------------------------------------------------------
    def _avg_reduce(self, patches: np.ndarray) -> np.ndarray:
        # float32 divide: the int64 count is cast before the division, so
        # nothing in the expression promotes to float64.
        finite = np.isfinite(patches)
        total = np.where(finite, patches, np.float32(0.0)).sum(axis=(1, 2))
        count = np.maximum(finite.sum(axis=(1, 2)), 1).astype(np.float32)
        return total / count

    # -- LRN -------------------------------------------------------------------
    def lrn(self, layer, x: np.ndarray) -> np.ndarray:
        self._count("lrn")
        channels = x.shape[0]
        half = layer.local_size // 2
        squared = self.scratch("lrn_sq", x.shape)
        np.multiply(x, x, out=squared)
        prefix = self.scratch("lrn_prefix", (channels + 1,) + x.shape[1:])
        prefix[0] = 0.0
        np.cumsum(squared, axis=0, out=prefix[1:])
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        scale = prefix[hi] - prefix[lo]  # fresh array: fancy indexing copies
        scale *= np.float32(layer.alpha / layer.local_size)
        scale += np.float32(layer.k)
        np.power(scale, np.float32(layer.beta), out=scale)
        np.divide(x, scale, out=scale)
        return scale

    def lrn_batch(self, layer, xs: np.ndarray) -> np.ndarray:
        self._count("lrn")
        channels = xs.shape[1]
        half = layer.local_size // 2
        squared = self.scratch("lrn_sq_b", xs.shape)
        np.multiply(xs, xs, out=squared)
        prefix = self.scratch(
            "lrn_prefix_b", (xs.shape[0], channels + 1) + xs.shape[2:]
        )
        prefix[:, 0] = 0.0
        np.cumsum(squared, axis=1, out=prefix[:, 1:])
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        scale = prefix[:, hi] - prefix[:, lo]
        scale *= np.float32(layer.alpha / layer.local_size)
        scale += np.float32(layer.k)
        np.power(scale, np.float32(layer.beta), out=scale)
        np.divide(xs, scale, out=scale)
        return scale

    # -- quantized GEMM --------------------------------------------------------
    def quantized_gemm(self, qmatrix, x, out=None):
        columns = int(x.shape[-1]) if x.ndim > 1 else 1
        if (
            x.ndim <= 2
            and qmatrix.bits <= 8  # int32 accumulator headroom
            and qmatrix.codes.size * columns <= self.INT_GEMM_LIMIT
        ):
            return self._int_quantized_gemm(qmatrix, x, out)
        return super().quantized_gemm(qmatrix, x, out=out)

    def _int_quantized_gemm(self, qmatrix, x, out):
        """Dequant-free integer GEMM.

        With ``W = s·Q + z`` (affine weight codes; ``s``/``z`` a scalar
        for per-tensor weights or a per-row vector for per-channel
        weights) and ``x = s_x·Qx + z_x`` (activations quantized on the
        fly, always per-tensor):

        ``W@x = s·s_x·(Q@Qx) + s·z_x·rowsum(Q) + z·s_x·colsum(Qx)
        + z·z_x·K``

        — one integer matmul plus rank-1 float corrections; the float
        weight matrix is never materialized.  Accumulation is int32
        (codes are ≤8 bits, so products fit for any K the zoo reaches).
        Per-channel ``s``/``z`` ride the row axis, so every correction
        term broadcasts as a column vector.
        """
        self._count("quantized_gemm")
        self._count("quantized_gemm_int")
        from repro.nn.quantize import quantize_linear

        qx = quantize_linear(x, 8)
        codes_x = qx.codes.astype(np.int32).reshape(x.shape)
        acc = qmatrix.codes_i32() @ codes_x
        # (1,) for per-tensor weights, (rows,) for per-channel.
        s = np.atleast_1d(np.asarray(qmatrix.scale, dtype=np.float32))
        z = np.atleast_1d(np.asarray(qmatrix.zero_point, dtype=np.float32))
        s_x, z_x = np.float32(qx.scale), np.float32(qx.zero_point)
        depth = np.float32(qmatrix.shape[-1])
        result = acc.astype(np.float32)
        row_term = (s * z_x) * qmatrix.row_sums()
        col_sums = codes_x.sum(axis=0, dtype=np.int64).astype(np.float32)
        const_term = z * (z_x * depth)
        if x.ndim > 1:
            result *= (s * s_x)[:, None]
            result += row_term[:, None]
            result += z[:, None] * (s_x * col_sums)[None, :]
            result += const_term[:, None]
        else:
            result *= s * s_x
            result += row_term
            result += z * (s_x * col_sums)
            result += const_term
        if out is not None:
            np.copyto(out, result)
            return out
        return result


_REGISTRY = {
    "reference": KernelBackend,
    "tuned": TunedBackend,
}
_INSTANCES: Dict[str, KernelBackend] = {}


def blas_info() -> Dict[str, object]:
    """The numpy build's BLAS/LAPACK configuration, JSON-friendly.

    Recorded in the bench's ``environment`` block so cross-box
    trajectories are interpretable (a 1.2x GEMM on OpenBLAS and on
    netlib are different facts).
    """
    try:
        config = np.show_config(mode="dicts")
    except TypeError:  # pragma: no cover - older numpy without mode=
        return {"numpy": np.__version__}
    deps = config.get("Build Dependencies", {})
    info: Dict[str, object] = {"numpy": np.__version__}
    for kind in ("blas", "lapack"):
        entry = deps.get(kind, {})
        info[kind] = {
            key: entry.get(key)
            for key in ("name", "version", "detection method")
            if entry.get(key) is not None
        }
    return info


def record_backend_metrics(registry) -> None:
    """Export kernel-call counters into a metrics registry.

    Like plan metrics, called explicitly (``repro metrics``) rather than
    auto-announced: which process runs which kernels depends on worker
    topology, so implicit announcement would make merged telemetry
    nondeterministic across ``--jobs``.
    """
    registry.gauge(
        "backend_threads",
        help="GEMM thread budget of the tuned backend on this host",
    ).set(effective_threads())
    for name, instance in _INSTANCES.items():
        for op, count in sorted(instance.calls.items()):
            registry.counter(
                "backend_kernel_calls_total",
                help="kernel invocations through the backend interface",
                backend=name,
                op=op,
            ).inc(count)
