"""A small numpy DNN inference framework (the reproduction's CaffeJS).

The paper's benchmarks are image-recognition web apps built on CaffeJS —
a JavaScript port of Caffe that loads a pre-trained Caffe model and runs
*forward* (inference) execution.  This package reproduces the pieces the
offloading system depends on:

* layers used by the benchmark CNNs: conv, max/avg pool, fc, ReLU, LRN,
  concat (inception), dropout, softmax (:mod:`repro.nn.layers`);
* a dataflow network with sequential spine + inception composites,
  supporting front/rear splitting for partial inference
  (:mod:`repro.nn.network`);
* Caffe-like model files (description JSON + parameter blobs) with real
  byte sizes derived from parameter counts (:mod:`repro.nn.model`);
* analytic per-layer cost reports (FLOPs, output sizes, serialized feature
  bytes) driving the virtual-time device model (:mod:`repro.nn.cost`);
* the three benchmark architectures, faithful to the originals so their
  model sizes land on the paper's 27 / 44 / 44 MB (:mod:`repro.nn.zoo`).

Tensors are single-sample ``float32`` arrays shaped ``(C, H, W)`` in Caffe
convention; fc layers operate on flattened vectors.
"""

from repro.nn.network import Network, SplitNetwork
from repro.nn.cost import LayerCost, network_costs, total_flops
from repro.nn.model import Model, ModelFile

__all__ = [
    "LayerCost",
    "Model",
    "ModelFile",
    "Network",
    "SplitNetwork",
    "network_costs",
    "total_flops",
]
