"""Elementwise layers: ReLU, dropout (inference mode), softmax."""

from __future__ import annotations

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers.base import Layer, LayerShapeError, Shape


class _SameShapeLayer(Layer):
    """Base for layers whose output shape equals their input shape."""

    def infer_shape(self, input_shape: Shape) -> Shape:
        if not input_shape:
            raise LayerShapeError(f"{self.kind} layer needs a non-empty input shape")
        return tuple(input_shape)


class ReLULayer(_SameShapeLayer):
    """Rectified linear activation."""

    kind = "relu"

    def forward(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Forward pass; ``out`` (optional) is a reusable output buffer."""
        self.check_input(x)
        if out is not None:
            return active_backend().relu(x, out.reshape(x.shape))
        return active_backend().relu(x)

    def count_flops(self) -> float:
        return float(self.output_elements)


class DropoutLayer(_SameShapeLayer):
    """Dropout; identity at inference time (this framework only infers).

    Kept in the architectures because the description files must match the
    originals layer-for-layer, and because it still costs a (tiny) dispatch
    overhead in the latency model.
    """

    kind = "dropout"

    def __init__(self, name: str, rate: float = 0.5):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise LayerShapeError(f"dropout rate must be in [0,1), got {rate}")
        self.rate = rate

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        return x

    def count_flops(self) -> float:
        return 0.0

    def config(self) -> dict:
        return {"rate": self.rate}


class SoftmaxLayer(_SameShapeLayer):
    """Numerically stable softmax over all elements (the class scores)."""

    kind = "softmax"

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        shifted = x - x.max()
        exps = np.exp(shifted)
        return (exps / exps.sum()).astype(np.float32, copy=False)

    def count_flops(self) -> float:
        # exp + subtract + divide + the two reductions, per element.
        return 5.0 * self.output_elements
