"""Convolutional layer (im2col + matmul), Caffe semantics."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.nn.tensor import conv_output_hw, im2col
from repro.sim import SeededRng


class ConvLayer(Layer):
    """2-D convolution with ``num_filters`` square filters.

    The paper's background section calls out the key property reproduced
    here: "conv layers in modern CNNs have many filters, so the output of a
    conv layer is prone to be larger than the input" — which is why feature
    size (and hence snapshot transmission cost) surges at conv offload
    points (Fig. 8).
    """

    kind = "conv"

    def __init__(
        self,
        name: str,
        num_filters: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
    ):
        super().__init__(name)
        if num_filters <= 0 or kernel <= 0 or stride <= 0 or pad < 0:
            raise LayerShapeError(
                f"bad conv config: filters={num_filters} kernel={kernel} "
                f"stride={stride} pad={pad}"
            )
        if groups <= 0 or num_filters % groups != 0:
            raise LayerShapeError(
                f"groups={groups} must divide num_filters={num_filters}"
            )
        self.num_filters = num_filters
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"conv needs (C,H,W) input, got {input_shape}")
        channels, height, width = input_shape
        if channels % self.groups != 0:
            raise LayerShapeError(
                f"conv {self.name!r}: groups={self.groups} must divide input "
                f"channels={channels}"
            )
        out_h, out_w = conv_output_hw(height, width, self.kernel, self.stride, self.pad)
        return (self.num_filters, out_h, out_w)

    @property
    def _channels_per_group(self) -> int:
        return self.input_shape[0] // self.groups

    def init_params(self, rng: SeededRng) -> None:
        fan_in = self._channels_per_group * self.kernel * self.kernel
        scale = float(np.sqrt(2.0 / fan_in))  # He init: sensible magnitudes
        self.params = {
            "weight": rng.normal_array(
                (
                    self.num_filters,
                    self._channels_per_group,
                    self.kernel,
                    self.kernel,
                ),
                scale,
            ),
            "bias": np.zeros(self.num_filters, dtype=np.float32),
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        if self.groups == 1:
            cols = im2col(x, self.kernel, self.stride, self.pad)
            weight = self.params["weight"].reshape(self.num_filters, -1)
            out = weight @ cols + self.params["bias"][:, None]
            return out.reshape(self.out_shape).astype(np.float32, copy=False)
        # Grouped convolution (AlexNet-style): each filter group only sees
        # its slice of the input channels.
        per_in = self._channels_per_group
        per_out = self.num_filters // self.groups
        outputs = []
        for group in range(self.groups):
            x_slice = x[group * per_in : (group + 1) * per_in]
            cols = im2col(x_slice, self.kernel, self.stride, self.pad)
            weight = self.params["weight"][
                group * per_out : (group + 1) * per_out
            ].reshape(per_out, -1)
            bias = self.params["bias"][group * per_out : (group + 1) * per_out]
            outputs.append(weight @ cols + bias[:, None])
        out = np.concatenate(outputs, axis=0)
        return out.reshape(self.out_shape).astype(np.float32, copy=False)

    def count_flops(self) -> float:
        self._require_built()
        _, out_h, out_w = self.out_shape
        macs = (
            self.num_filters
            * self._channels_per_group
            * self.kernel**2
            * out_h
            * out_w
        )
        return 2.0 * macs

    def config(self) -> dict:
        return {
            "num_filters": self.num_filters,
            "kernel": self.kernel,
            "stride": self.stride,
            "pad": self.pad,
            "groups": self.groups,
        }
