"""Convolutional layer (im2col + matmul), Caffe semantics.

Forward passes reuse two per-layer caches (built lazily, shared safely
because the simulator is single-threaded per process):

* the pre-reshaped, contiguous per-group weight matrices — rebuilding
  them every ``forward`` was pure overhead, and for grouped convolution
  (AlexNet-style) it meant a slice + reshape + copy per group per call;
* the im2col scratch buffer for each input shape the layer has seen.

The weight cache invalidates when ``params["weight"]`` is *replaced* (how
every loader and quantizer in this repo updates weights).  To make sure
in-place writes can never serve stale results, the cached weight array is
frozen (``writeable=False``) — mutate-in-place code must either assign a
fresh array or call :meth:`invalidate_param_cache` first.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.nn.tensor import conv_output_hw, im2col
from repro.sim import SeededRng


class ConvLayer(Layer):
    """2-D convolution with ``num_filters`` square filters.

    The paper's background section calls out the key property reproduced
    here: "conv layers in modern CNNs have many filters, so the output of a
    conv layer is prone to be larger than the input" — which is why feature
    size (and hence snapshot transmission cost) surges at conv offload
    points (Fig. 8).
    """

    kind = "conv"

    def __init__(
        self,
        name: str,
        num_filters: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
    ):
        super().__init__(name)
        if num_filters <= 0 or kernel <= 0 or stride <= 0 or pad < 0:
            raise LayerShapeError(
                f"bad conv config: filters={num_filters} kernel={kernel} "
                f"stride={stride} pad={pad}"
            )
        if groups <= 0 or num_filters % groups != 0:
            raise LayerShapeError(
                f"groups={groups} must divide num_filters={num_filters}"
            )
        self.num_filters = num_filters
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups
        self._weight_ref: Optional["weakref.ref"] = None
        self._weight_matrices: Optional[List[np.ndarray]] = None
        self._col_buffers: Dict[Tuple[int, ...], np.ndarray] = {}

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"conv needs (C,H,W) input, got {input_shape}")
        channels, height, width = input_shape
        if channels % self.groups != 0:
            raise LayerShapeError(
                f"conv {self.name!r}: groups={self.groups} must divide input "
                f"channels={channels}"
            )
        out_h, out_w = conv_output_hw(height, width, self.kernel, self.stride, self.pad)
        return (self.num_filters, out_h, out_w)

    @property
    def _channels_per_group(self) -> int:
        return self.input_shape[0] // self.groups

    def invalidate_param_cache(self) -> None:
        """Drop the cached weight matrices and unfreeze the weight array."""
        if self._weight_matrices is not None and self._weight_ref is not None:
            weight = self._weight_ref()
            if weight is not None:
                try:
                    weight.flags.writeable = True
                except ValueError:
                    pass  # view of a read-only base; replacement only
        self._weight_ref = None
        self._weight_matrices = None

    def _group_weight_matrices(self) -> List[np.ndarray]:
        """Contiguous (filters_per_group, C/g * k * k) matmul operands.

        Cached until ``params["weight"]`` is replaced; the source array is
        frozen while cached so in-place writes fail loudly instead of
        silently bypassing the cache.
        """
        weight = self.params["weight"]
        if self._weight_matrices is None or (
            self._weight_ref is None or self._weight_ref() is not weight
        ):
            per_out = self.num_filters // self.groups
            self._weight_matrices = [
                np.ascontiguousarray(
                    weight[group * per_out : (group + 1) * per_out].reshape(
                        per_out, -1
                    ),
                    dtype=np.float32,
                )
                for group in range(self.groups)
            ]
            self._weight_ref = weakref.ref(weight)
            weight.flags.writeable = False
        return self._weight_matrices

    def _cols_buffer(self, channels: int, out_h: int, out_w: int) -> np.ndarray:
        """Scratch im2col buffer, reused across forwards of one shape."""
        shape = (channels, self.kernel, self.kernel, out_h, out_w)
        buffer = self._col_buffers.get(shape)
        if buffer is None:
            buffer = np.empty(shape, dtype=np.float32)
            self._col_buffers[shape] = buffer
        return buffer

    def init_params(self, rng: SeededRng) -> None:
        self.invalidate_param_cache()
        fan_in = self._channels_per_group * self.kernel * self.kernel
        scale = float(np.sqrt(2.0 / fan_in))  # He init: sensible magnitudes
        self.params = {
            "weight": rng.normal_array(
                (
                    self.num_filters,
                    self._channels_per_group,
                    self.kernel,
                    self.kernel,
                ),
                scale,
            ),
            "bias": np.zeros(self.num_filters, dtype=np.float32),
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        matrices = self._group_weight_matrices()
        _, out_h, out_w = self.out_shape
        if self.groups == 1:
            buffer = self._cols_buffer(x.shape[0], out_h, out_w)
            cols = im2col(x, self.kernel, self.stride, self.pad, out=buffer)
            out = matrices[0] @ cols + self.params["bias"][:, None]
            return out.reshape(self.out_shape).astype(np.float32, copy=False)
        # Grouped convolution (AlexNet-style): each filter group only sees
        # its slice of the input channels.
        per_in = self._channels_per_group
        per_out = self.num_filters // self.groups
        buffer = self._cols_buffer(per_in, out_h, out_w)
        outputs = []
        for group in range(self.groups):
            x_slice = x[group * per_in : (group + 1) * per_in]
            cols = im2col(x_slice, self.kernel, self.stride, self.pad, out=buffer)
            bias = self.params["bias"][group * per_out : (group + 1) * per_out]
            outputs.append(matrices[group] @ cols + bias[:, None])
        out = np.concatenate(outputs, axis=0)
        return out.reshape(self.out_shape).astype(np.float32, copy=False)

    def count_flops(self) -> float:
        self._require_built()
        _, out_h, out_w = self.out_shape
        macs = (
            self.num_filters
            * self._channels_per_group
            * self.kernel**2
            * out_h
            * out_w
        )
        return 2.0 * macs

    def config(self) -> dict:
        return {
            "num_filters": self.num_filters,
            "kernel": self.kernel,
            "stride": self.stride,
            "pad": self.pad,
            "groups": self.groups,
        }
