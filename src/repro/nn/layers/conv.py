"""Convolutional layer (im2col + matmul), Caffe semantics.

Forward passes reuse two per-layer caches (built lazily, shared safely
because the simulator is single-threaded per process):

* the pre-reshaped, contiguous per-group matmul operands (weight matrix
  plus bias column) — rebuilding them every ``forward`` was pure overhead,
  and for grouped convolution (AlexNet-style) it meant a slice + reshape +
  copy per group per call;
* the im2col scratch buffer for each input shape the layer has seen.

The operand cache invalidates when ``params["weight"]`` or
``params["bias"]`` is *replaced* (how every loader and quantizer in this
repo updates parameters).  To make sure in-place writes can never serve
stale results, both cached source arrays are frozen (``writeable=False``)
— mutate-in-place code must either assign a fresh array or call
:meth:`invalidate_param_cache` first.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.nn.tensor import conv_output_hw
from repro.sim import SeededRng


class ConvLayer(Layer):
    """2-D convolution with ``num_filters`` square filters.

    The paper's background section calls out the key property reproduced
    here: "conv layers in modern CNNs have many filters, so the output of a
    conv layer is prone to be larger than the input" — which is why feature
    size (and hence snapshot transmission cost) surges at conv offload
    points (Fig. 8).
    """

    kind = "conv"

    def __init__(
        self,
        name: str,
        num_filters: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
    ):
        super().__init__(name)
        if num_filters <= 0 or kernel <= 0 or stride <= 0 or pad < 0:
            raise LayerShapeError(
                f"bad conv config: filters={num_filters} kernel={kernel} "
                f"stride={stride} pad={pad}"
            )
        if groups <= 0 or num_filters % groups != 0:
            raise LayerShapeError(
                f"groups={groups} must divide num_filters={num_filters}"
            )
        self.num_filters = num_filters
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.groups = groups
        self._weight_ref: Optional["weakref.ref"] = None
        self._bias_ref: Optional["weakref.ref"] = None
        self._operands: Optional[List[Tuple[np.ndarray, np.ndarray]]] = None
        self._col_buffers: Dict[Tuple[int, ...], np.ndarray] = {}

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"conv needs (C,H,W) input, got {input_shape}")
        channels, height, width = input_shape
        if channels % self.groups != 0:
            raise LayerShapeError(
                f"conv {self.name!r}: groups={self.groups} must divide input "
                f"channels={channels}"
            )
        out_h, out_w = conv_output_hw(height, width, self.kernel, self.stride, self.pad)
        return (self.num_filters, out_h, out_w)

    @property
    def _channels_per_group(self) -> int:
        return self.input_shape[0] // self.groups

    def invalidate_param_cache(self) -> None:
        """Drop the cached matmul operands and unfreeze the source arrays."""
        if self._operands is not None:
            for ref in (self._weight_ref, self._bias_ref):
                source = ref() if ref is not None else None
                if source is not None:
                    try:
                        source.flags.writeable = True
                    except ValueError:
                        pass  # view of a read-only base; replacement only
        self._weight_ref = None
        self._bias_ref = None
        self._operands = None

    def _group_operands(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-group ``(weight matrix, bias column)`` matmul operands.

        The matrix is the contiguous ``(filters_per_group, C/g * k * k)``
        reshape of the group's filters; the bias is the group's slice as a
        contiguous ``(filters_per_group, 1)`` column, pre-shaped for the
        broadcast add (previously re-sliced and re-shaped every forward on
        the grouped path).  Cached until ``params["weight"]`` *or*
        ``params["bias"]`` is replaced; both source arrays are frozen while
        cached so in-place writes fail loudly instead of silently bypassing
        the cache.
        """
        weight = self.params["weight"]
        bias = self.params["bias"]
        stale = (
            self._operands is None
            or self._weight_ref is None
            or self._weight_ref() is not weight
            or self._bias_ref is None
            or self._bias_ref() is not bias
        )
        if stale:
            self.invalidate_param_cache()
            per_out = self.num_filters // self.groups
            self._operands = [
                (
                    np.ascontiguousarray(
                        weight[group * per_out : (group + 1) * per_out].reshape(
                            per_out, -1
                        ),
                        dtype=np.float32,
                    ),
                    np.ascontiguousarray(
                        bias[group * per_out : (group + 1) * per_out][:, None],
                        dtype=np.float32,
                    ),
                )
                for group in range(self.groups)
            ]
            self._weight_ref = weakref.ref(weight)
            self._bias_ref = weakref.ref(bias)
            weight.flags.writeable = False
            bias.flags.writeable = False
        return self._operands

    def _cols_buffer(self, channels: int, out_h: int, out_w: int) -> np.ndarray:
        """Scratch im2col buffer, reused across forwards of one shape."""
        shape = (channels, self.kernel, self.kernel, out_h, out_w)
        buffer = self._col_buffers.get(shape)
        if buffer is None:
            buffer = np.empty(shape, dtype=np.float32)
            self._col_buffers[shape] = buffer
        return buffer

    def init_params(self, rng: SeededRng) -> None:
        self.invalidate_param_cache()
        fan_in = self._channels_per_group * self.kernel * self.kernel
        scale = float(np.sqrt(2.0 / fan_in))  # He init: sensible magnitudes
        self.params = {
            "weight": rng.normal_array(
                (
                    self.num_filters,
                    self._channels_per_group,
                    self.kernel,
                    self.kernel,
                ),
                scale,
            ),
            "bias": np.zeros(self.num_filters, dtype=np.float32),
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        backend = active_backend()
        operands = self._group_operands()
        _, out_h, out_w = self.out_shape
        if self.groups == 1:
            matrix, bias = operands[0]
            buffer = self._cols_buffer(x.shape[0], out_h, out_w)
            cols = backend.im2col(x, self.kernel, self.stride, self.pad, out=buffer)
            out = backend.gemm(matrix, cols) + bias
            return out.reshape(self.out_shape).astype(np.float32, copy=False)
        # Grouped convolution (AlexNet-style): each filter group only sees
        # its slice of the input channels.
        per_in = self._channels_per_group
        buffer = self._cols_buffer(per_in, out_h, out_w)
        outputs = []
        for group, (matrix, bias) in enumerate(operands):
            x_slice = x[group * per_in : (group + 1) * per_in]
            cols = backend.im2col(
                x_slice, self.kernel, self.stride, self.pad, out=buffer
            )
            outputs.append(backend.gemm(matrix, cols) + bias)
        out = np.concatenate(outputs, axis=0)
        return out.reshape(self.out_shape).astype(np.float32, copy=False)

    def count_flops(self) -> float:
        self._require_built()
        _, out_h, out_w = self.out_shape
        macs = (
            self.num_filters
            * self._channels_per_group
            * self.kernel**2
            * out_h
            * out_w
        )
        return 2.0 * macs

    def config(self) -> dict:
        return {
            "num_filters": self.num_filters,
            "kernel": self.kernel,
            "stride": self.stride,
            "pad": self.pad,
            "groups": self.groups,
        }
