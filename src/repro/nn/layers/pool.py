"""Max / average pooling, Caffe semantics (ceil output formula)."""

from __future__ import annotations

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.nn.tensor import pool_output_hw


class PoolLayer(Layer):
    """Spatial pooling.

    The paper leans on the size asymmetry reproduced here: "the output of a
    pool layer becomes smaller than its input" because only the window
    maximum survives — which makes pool layers the cheap offload points in
    Fig. 8 (small feature data, little computation).
    """

    kind = "pool"

    def __init__(
        self,
        name: str,
        kernel: int,
        stride: int,
        pad: int = 0,
        mode: str = "max",
    ):
        super().__init__(name)
        if kernel <= 0 or stride <= 0 or pad < 0:
            raise LayerShapeError(
                f"bad pool config: kernel={kernel} stride={stride} pad={pad}"
            )
        if mode not in ("max", "avg"):
            raise LayerShapeError(f"pool mode must be 'max' or 'avg', got {mode!r}")
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.mode = mode

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"pool needs (C,H,W) input, got {input_shape}")
        channels, height, width = input_shape
        out_h, out_w = pool_output_hw(height, width, self.kernel, self.stride, self.pad)
        return (channels, out_h, out_w)

    def forward(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Forward pass; ``out`` (optional) is a reusable output buffer.

        With ``out`` the max path runs as strided in-place maxima —
        bitwise-identical values, no patch stack — following the ``out=``
        convention of :func:`repro.nn.tensor.im2col`.
        """
        self.check_input(x)
        return active_backend().pool(self, x, out)

    def count_flops(self) -> float:
        # One comparison (or add) per window element per output cell.
        self._require_built()
        return float(self.kernel**2 * self.output_elements)

    def config(self) -> dict:
        return {
            "kernel": self.kernel,
            "stride": self.stride,
            "pad": self.pad,
            "mode": self.mode,
        }
