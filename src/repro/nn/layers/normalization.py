"""Local response normalization (across channels), Caffe/AlexNet style."""

from __future__ import annotations

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers.base import Layer, LayerShapeError, Shape


class LRNLayer(Layer):
    """Across-channel LRN: ``y = x / (k + alpha/n * sum(x^2))^beta``.

    Both GoogLeNet and the Levi–Hassner age/gender nets use LRN after their
    early pooling stages, so it appears between candidate offload points.
    """

    kind = "lrn"

    def __init__(
        self,
        name: str,
        local_size: int = 5,
        alpha: float = 1e-4,
        beta: float = 0.75,
        k: float = 1.0,
    ):
        super().__init__(name)
        if local_size <= 0 or local_size % 2 == 0:
            raise LayerShapeError(f"local_size must be odd positive, got {local_size}")
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"lrn needs (C,H,W) input, got {input_shape}")
        return tuple(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        return active_backend().lrn(self, x)

    def count_flops(self) -> float:
        # square, windowed sum, scale, divide — roughly 4 ops/element plus
        # the window accumulation.
        return float((4 + self.local_size) * self.output_elements)

    def config(self) -> dict:
        return {
            "local_size": self.local_size,
            "alpha": self.alpha,
            "beta": self.beta,
            "k": self.k,
        }
