"""Layer implementations for the benchmark CNNs.

Every layer exposes the same protocol (:class:`~repro.nn.layers.base.Layer`):
shape propagation, an analytic FLOP count, parameter blobs, and a numpy
``forward``.  The set covers everything GoogLeNet, AgeNet and GenderNet use:
conv, max/avg pool, fully connected, ReLU, LRN, channel concat (inception),
dropout and softmax.
"""

from repro.nn.layers.base import Layer, LayerShapeError
from repro.nn.layers.io import InputLayer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.pool import PoolLayer
from repro.nn.layers.dense import FCLayer
from repro.nn.layers.activation import DropoutLayer, ReLULayer, SoftmaxLayer
from repro.nn.layers.normalization import LRNLayer
from repro.nn.layers.batchnorm import BatchNormLayer, ScaleLayer
from repro.nn.layers.composite import InceptionModule, ResidualBlock
from repro.nn.layers.exits import ExitHead

__all__ = [
    "BatchNormLayer",
    "ConvLayer",
    "DropoutLayer",
    "ExitHead",
    "FCLayer",
    "InceptionModule",
    "InputLayer",
    "LRNLayer",
    "Layer",
    "LayerShapeError",
    "PoolLayer",
    "ReLULayer",
    "ResidualBlock",
    "ScaleLayer",
    "SoftmaxLayer",
]
