"""Input layer: validates and forwards the user-supplied image tensor."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, LayerShapeError, Shape


class InputLayer(Layer):
    """The network entry point.

    Declares the expected input shape ``(channels, height, width)``; forward
    is identity (the browser has already decoded the image into pixel data).
    """

    kind = "input"

    def __init__(self, shape: Shape, name: str = "input"):
        super().__init__(name)
        if len(shape) != 3 or any(dim <= 0 for dim in shape):
            raise LayerShapeError(f"input shape must be positive (C,H,W), got {shape}")
        self.declared_shape = tuple(shape)

    def infer_shape(self, input_shape: Shape) -> Shape:
        if tuple(input_shape) != self.declared_shape:
            raise LayerShapeError(
                f"input layer declared {self.declared_shape}, wired to {input_shape}"
            )
        return self.declared_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        return x.astype(np.float32, copy=False)

    def config(self) -> dict:
        return {"shape": list(self.declared_shape)}
