"""Batch normalization and channel-wise scaling (inference mode).

Caffe-era residual networks express normalization as a ``BatchNorm`` layer
(whiten with stored running statistics) followed by a ``Scale`` layer
(per-channel affine).  Both are inference-only here — this framework only
ever runs forward passes, so the stored statistics are parameters like any
others (they ship in the model files and count toward transfer size).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.sim import SeededRng


class BatchNormLayer(Layer):
    """Per-channel whitening with stored statistics.

    ``y = (x - mean) / sqrt(var + eps)`` — mean/var are the *running*
    statistics frozen at training time (random here, like all parameters;
    variances are kept positive).
    """

    kind = "batchnorm"

    def __init__(self, name: str, eps: float = 1e-5):
        super().__init__(name)
        if eps <= 0:
            raise LayerShapeError(f"eps must be positive, got {eps}")
        self.eps = eps

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"batchnorm needs (C,H,W) input, got {input_shape}")
        return tuple(input_shape)

    def init_params(self, rng: SeededRng) -> None:
        channels = self.input_shape[0]
        self.params = {
            "mean": rng.normal_array((channels,), 0.1),
            "variance": (rng.uniform_array((channels,), 0.5, 1.5)).astype(
                np.float32
            ),
        }

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        mean = self.params["mean"][:, None, None]
        variance = self.params["variance"][:, None, None]
        return ((x - mean) / np.sqrt(variance + self.eps)).astype(
            np.float32, copy=False
        )

    def count_flops(self) -> float:
        # subtract, divide per element (rsqrt amortized per channel).
        return 2.0 * self.output_elements

    def config(self) -> dict:
        return {"eps": self.eps}


class ScaleLayer(Layer):
    """Per-channel affine: ``y = x * gamma + beta``."""

    kind = "scale"

    def __init__(self, name: str, bias: bool = True):
        super().__init__(name)
        self.bias = bias

    def infer_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise LayerShapeError(f"scale needs (C,H,W) input, got {input_shape}")
        return tuple(input_shape)

    def init_params(self, rng: SeededRng) -> None:
        channels = self.input_shape[0]
        self.params = {"gamma": rng.uniform_array((channels,), 0.5, 1.5)}
        if self.bias:
            self.params["beta"] = rng.normal_array((channels,), 0.1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        out = x * self.params["gamma"][:, None, None]
        if self.bias:
            out = out + self.params["beta"][:, None, None]
        return out.astype(np.float32, copy=False)

    def count_flops(self) -> float:
        return (2.0 if self.bias else 1.0) * self.output_elements

    def config(self) -> dict:
        return {"bias": self.bias}
