"""Early-exit classifier heads for multi-exit networks.

Edgent ("Edge AI: On-Demand Accelerating DNN Inference") and BranchyNet
attach small auxiliary classifiers to trunk layers of a CNN so a
deadline-constrained inference can stop early, trading top-1 accuracy for
latency.  GoogLeNet itself ships two such heads (after inception_4a and
inception_4d) — used only for training in the original, but exactly the
structure an early-exit deployment reuses.

An :class:`ExitHead` sits *on* the network spine at its attach point.  On
the trunk path it is the identity (deploy-time GoogLeNet drops its aux
heads, so the full-network output is untouched); the head layers only run
when the exit is actually taken — ``Network.at_exit`` materializes the
pruned network, and ``compile_plan(exit_point=k)`` lowers trunk + head and
discards everything past the attach point.  Each head carries a *modeled*
top-1 accuracy, the quantity the joint (split, exit) optimizer maximizes
under a latency deadline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.sim import SeededRng


class ExitHead(Layer):
    """An early-exit classifier branch attached to a trunk layer.

    ``head`` is the sequential classifier (pool/conv/fc/softmax …) run when
    the exit is taken; ``accuracy`` is the exit's modeled top-1 accuracy in
    (0, 1].  On the trunk path the layer is the identity and costs nothing
    (``count_flops() == 0``); :meth:`head_flops` prices the head for the
    exit-taken path.
    """

    kind = "exit"

    def __init__(self, name: str, head: Sequence[Layer], accuracy: float):
        super().__init__(name)
        if not head:
            raise LayerShapeError(f"exit {name!r} needs a non-empty head")
        if not 0.0 < accuracy <= 1.0:
            raise LayerShapeError(
                f"exit {name!r} accuracy must be in (0, 1], got {accuracy}"
            )
        self.head: List[Layer] = list(head)
        self.accuracy = float(accuracy)

    # -- building -------------------------------------------------------------
    def build(self, input_shape: Shape, rng: SeededRng) -> Shape:
        self.input_shape = tuple(input_shape)
        shape = self.input_shape
        for layer in self.head:
            shape = layer.build(shape, rng.child(f"{self.name}/{layer.name}"))
        # Trunk path: identity — the full network never sees the head.
        self.out_shape = self.input_shape
        return self.out_shape

    @property
    def exit_shape(self) -> Shape:
        """Output shape when the exit is taken (the head's final shape)."""
        self._require_built()
        return self.head[-1].out_shape

    # -- execution ------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Trunk path: pass through unchanged (aux heads dropped at deploy)."""
        self.check_input(x)
        return x

    def head_forward(self, x: np.ndarray) -> np.ndarray:
        """Exit-taken path: run the classifier head."""
        self.check_input(x)
        value = np.asarray(x, dtype=np.float32)
        for layer in self.head:
            value = layer.forward(value)
        return value

    # -- accounting -----------------------------------------------------------
    def count_flops(self) -> float:
        return 0.0  # trunk path is free; head priced via head_flops()

    def head_flops(self) -> float:
        return float(sum(layer.count_flops() for layer in self.head))

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.head)

    def param_arrays(self) -> Dict[str, np.ndarray]:
        """All head parameter blobs, keyed for the model file manifest."""
        arrays: Dict[str, np.ndarray] = {}
        for layer in self.head:
            for key, blob in layer.params.items():
                arrays[f"head/{layer.name}/{key}"] = blob
        return arrays

    def inner_layers(self) -> List[Layer]:
        return list(self.head)

    def exit_branch(self) -> List[Layer]:
        """The head layers, for the plan compiler's layer table and lowering.

        Distinct from ``dag_branches()`` on purpose: composites *join* their
        branches back into the trunk, an exit *prunes* the trunk — the plan
        compiler must not lower the head unless the exit is taken.
        """
        return list(self.head)

    def config(self) -> Dict:
        return {
            "accuracy": self.accuracy,
            "head": [layer.describe() for layer in self.head],
        }
