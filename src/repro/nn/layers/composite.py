"""Inception modules: parallel branches concatenated along channels.

GoogLeNet "arranges multiple layers in parallel (depicted as squared boxes);
the features are concatenated into a single output vector and passed to the
next layer" (paper §II.B).  We model each inception module as one composite
layer on the network spine: internally a list of sequential branches whose
outputs are concatenated channel-wise.  Offload points in Fig. 8 are spine
positions, so treating a module as one spine unit matches the paper's
granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from dataclasses import dataclass
from typing import Tuple

from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.sim import SeededRng


@dataclass(frozen=True)
class CompositeGraph:
    """A composite layer's branch-and-join structure, for the plan compiler.

    ``branches`` is an ordered list of ``(tag, layers)`` sequences that all
    read the composite's input; an *empty* layer list is the identity edge
    (a residual shortcut).  ``join`` names how branch outputs combine:
    ``"concat"`` (channel concatenation, in branch order) or ``"eltwise"``
    (elementwise sum).  Any layer exposing ``dag_branches()`` returning one
    of these is lowered into explicit branch/join plan nodes instead of
    being executed opaquely — new composite types need no compiler changes.
    """

    branches: Tuple
    join: str

    def __post_init__(self):
        if self.join not in ("concat", "eltwise"):
            raise ValueError(f"unknown join kind {self.join!r}")
        if not self.branches:
            raise ValueError("composite graph needs at least one branch")


class InceptionModule(Layer):
    """A composite layer of parallel branches joined by channel concat."""

    kind = "inception"

    def __init__(self, name: str, branches: Sequence[Sequence[Layer]]):
        super().__init__(name)
        if not branches or any(not branch for branch in branches):
            raise LayerShapeError(f"inception {name!r} needs non-empty branches")
        self.branches: List[List[Layer]] = [list(branch) for branch in branches]

    # -- building -------------------------------------------------------------
    def build(self, input_shape: Shape, rng: SeededRng) -> Shape:
        self.input_shape = tuple(input_shape)
        spatial = None
        channels_total = 0
        for index, branch in enumerate(self.branches):
            shape = self.input_shape
            for layer in branch:
                shape = layer.build(shape, rng.child(f"{self.name}/b{index}/{layer.name}"))
            if len(shape) != 3:
                raise LayerShapeError(
                    f"inception branch {index} of {self.name!r} must output "
                    f"(C,H,W), got {shape}"
                )
            if spatial is None:
                spatial = shape[1:]
            elif shape[1:] != spatial:
                raise LayerShapeError(
                    f"inception {self.name!r} branch {index} spatial dims "
                    f"{shape[1:]} != {spatial}; branches must agree for concat"
                )
            channels_total += shape[0]
        self.out_shape = (channels_total,) + spatial
        return self.out_shape

    def infer_shape(self, input_shape: Shape) -> Shape:
        # Shape inference requires built branches; build() handles it all.
        if self.out_shape is None:
            raise RuntimeError("InceptionModule.infer_shape before build()")
        return self.out_shape

    # -- execution -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        outputs = []
        for branch in self.branches:
            value = x
            for layer in branch:
                value = layer.forward(value)
            outputs.append(value)
        return np.concatenate(outputs, axis=0)

    # -- accounting -------------------------------------------------------------
    def count_flops(self) -> float:
        total = sum(
            layer.count_flops() for branch in self.branches for layer in branch
        )
        # Concat copies every output element once.
        return total + float(self.output_elements)

    @property
    def param_count(self) -> int:
        return sum(
            layer.param_count for branch in self.branches for layer in branch
        )

    @property
    def param_bytes(self) -> int:
        return self.param_count * 4

    def inner_layers(self) -> List[Layer]:
        """All constituent layers, for profiling and model serialization."""
        return [layer for branch in self.branches for layer in branch]

    def dag_branches(self) -> "CompositeGraph":
        """How the plan compiler lowers this composite into branch/join
        nodes: every branch reads the module input, outputs are joined by
        a channel-wise concat."""
        return CompositeGraph(
            branches=[("b%d" % index, list(branch))
                      for index, branch in enumerate(self.branches)],
            join="concat",
        )

    def param_arrays(self) -> Dict[str, np.ndarray]:
        """Flattened parameter blobs keyed by branch-qualified names."""
        blobs: Dict[str, np.ndarray] = {}
        for index, branch in enumerate(self.branches):
            for layer in branch:
                for key, blob in layer.params.items():
                    blobs[f"b{index}/{layer.name}/{key}"] = blob
        return blobs

    def config(self) -> dict:
        return {
            "branches": [
                [layer.describe() for layer in branch] for branch in self.branches
            ]
        }


class ResidualBlock(Layer):
    """A residual unit: ``out = body(x) + shortcut(x)`` (Eltwise SUM join).

    The post-GoogLeNet architecture generation (ResNets) replaces concat
    joins with elementwise adds.  The ``shortcut`` defaults to identity;
    a projection (1x1 conv) shortcut is used where the body changes shape.
    Like :class:`InceptionModule`, a block is one spine unit — offload
    points fall between blocks, matching how split-DNN systems treat
    residual networks.
    """

    kind = "residual"

    def __init__(
        self,
        name: str,
        body: Sequence[Layer],
        shortcut: Optional[Sequence[Layer]] = None,
    ):
        super().__init__(name)
        if not body:
            raise LayerShapeError(f"residual block {name!r} needs a non-empty body")
        self.body: List[Layer] = list(body)
        self.shortcut: List[Layer] = list(shortcut) if shortcut else []

    # -- building -------------------------------------------------------------
    def build(self, input_shape: Shape, rng: SeededRng) -> Shape:
        self.input_shape = tuple(input_shape)
        shape = self.input_shape
        for layer in self.body:
            shape = layer.build(shape, rng.child(f"{self.name}/body/{layer.name}"))
        shortcut_shape = self.input_shape
        for layer in self.shortcut:
            shortcut_shape = layer.build(
                shortcut_shape, rng.child(f"{self.name}/shortcut/{layer.name}")
            )
        if shape != shortcut_shape:
            raise LayerShapeError(
                f"residual block {self.name!r}: body outputs {shape} but the "
                f"shortcut outputs {shortcut_shape}; they must match for the add"
            )
        self.out_shape = shape
        return self.out_shape

    def infer_shape(self, input_shape: Shape) -> Shape:
        if self.out_shape is None:
            raise RuntimeError("ResidualBlock.infer_shape before build()")
        return self.out_shape

    # -- execution -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        value = x
        for layer in self.body:
            value = layer.forward(value)
        residual = x
        for layer in self.shortcut:
            residual = layer.forward(residual)
        return (value + residual).astype(np.float32, copy=False)

    # -- accounting -------------------------------------------------------------
    def inner_layers(self) -> List[Layer]:
        return list(self.body) + list(self.shortcut)

    def dag_branches(self) -> CompositeGraph:
        """Body and shortcut as two branches joined by an elementwise add;
        an identity shortcut is the empty branch (the join reads the block
        input directly)."""
        return CompositeGraph(
            branches=[("body", list(self.body)),
                      ("shortcut", list(self.shortcut))],
            join="eltwise",
        )

    def count_flops(self) -> float:
        total = sum(layer.count_flops() for layer in self.inner_layers())
        # The elementwise add touches every output element once.
        return total + float(self.output_elements)

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.inner_layers())

    @property
    def param_bytes(self) -> int:
        return self.param_count * 4

    def param_arrays(self) -> Dict[str, np.ndarray]:
        blobs: Dict[str, np.ndarray] = {}
        for prefix, layers in (("body", self.body), ("shortcut", self.shortcut)):
            for layer in layers:
                for key, blob in layer.params.items():
                    blobs[f"{prefix}/{layer.name}/{key}"] = blob
        return blobs

    def config(self) -> dict:
        return {
            "body": [layer.describe() for layer in self.body],
            "shortcut": [layer.describe() for layer in self.shortcut],
        }
