"""The layer protocol shared by every CNN building block."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim import SeededRng

Shape = Tuple[int, ...]


class LayerShapeError(ValueError):
    """Raised when a layer cannot accept its input shape."""


class Layer:
    """Base class: shape propagation, cost accounting, parameters, forward.

    Subclasses set :attr:`kind` (the key used by device throughput tables
    and the latency predictor) and implement :meth:`infer_shape`,
    :meth:`forward` and optionally :meth:`count_flops` /
    :meth:`init_params`.

    A layer is *built* against a concrete input shape before use; building
    records input/output shapes and allocates parameter blobs.
    """

    kind = "abstract"

    def __init__(self, name: str):
        self.name = name
        self.input_shape: Optional[Shape] = None
        self.out_shape: Optional[Shape] = None
        self.params: Dict[str, np.ndarray] = {}

    # -- building -------------------------------------------------------------
    def build(self, input_shape: Shape, rng: SeededRng) -> Shape:
        """Bind the layer to an input shape; returns the output shape."""
        self.input_shape = tuple(input_shape)
        self.out_shape = self.infer_shape(self.input_shape)
        self.init_params(rng)
        return self.out_shape

    @property
    def built(self) -> bool:
        return self.out_shape is not None

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError(f"layer {self.name!r} used before build()")

    # -- protocol to implement -----------------------------------------------
    def infer_shape(self, input_shape: Shape) -> Shape:
        """Output shape for a given input shape."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Numpy forward pass for one sample."""
        raise NotImplementedError

    def init_params(self, rng: SeededRng) -> None:
        """Allocate parameter blobs (default: parameter-free)."""

    def count_flops(self) -> float:
        """Floating-point operations for one forward pass (default: free)."""
        return 0.0

    # -- common accounting -----------------------------------------------------
    @property
    def param_count(self) -> int:
        return int(sum(blob.size for blob in self.params.values()))

    @property
    def param_bytes(self) -> int:
        """float32 on-disk parameter size (what model files ship)."""
        return self.param_count * 4

    @property
    def output_elements(self) -> int:
        self._require_built()
        count = 1
        for dim in self.out_shape:
            count *= dim
        return count

    def check_input(self, x: np.ndarray) -> None:
        self._require_built()
        if tuple(x.shape) != self.input_shape:
            raise LayerShapeError(
                f"layer {self.name!r} expects input shape {self.input_shape}, "
                f"got {tuple(x.shape)}"
            )

    def describe(self) -> Dict:
        """JSON-able architecture description (no parameters)."""
        self._require_built()
        return {
            "name": self.name,
            "kind": self.kind,
            "input_shape": list(self.input_shape),
            "output_shape": list(self.out_shape),
            "config": self.config(),
        }

    def config(self) -> Dict:
        """Layer-specific hyperparameters for the description file."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = self.out_shape if self.built else "unbuilt"
        return f"{type(self).__name__}({self.name!r}, out={shape})"
