"""Fully connected (inner product) layer."""

from __future__ import annotations

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers.base import Layer, LayerShapeError, Shape
from repro.sim import SeededRng


class FCLayer(Layer):
    """Fully connected layer over the flattened input tensor.

    Accepts any input shape and flattens it, like Caffe's InnerProduct; the
    output shape is ``(out_features,)``.  fc layers dominate the *parameter*
    budget of the benchmark models (AgeNet/GenderNet's 44 MB is mostly fc6),
    which is what makes pre-sending worthwhile.
    """

    kind = "fc"

    def __init__(self, name: str, out_features: int):
        super().__init__(name)
        if out_features <= 0:
            raise LayerShapeError(f"out_features must be positive, got {out_features}")
        self.out_features = out_features

    def infer_shape(self, input_shape: Shape) -> Shape:
        if not input_shape:
            raise LayerShapeError("fc layer needs a non-empty input shape")
        return (self.out_features,)

    @property
    def in_features(self) -> int:
        self._require_built()
        count = 1
        for dim in self.input_shape:
            count *= dim
        return count

    def init_params(self, rng: SeededRng) -> None:
        fan_in = self.in_features
        scale = float(np.sqrt(1.0 / fan_in))
        self.params = {
            "weight": rng.normal_array((self.out_features, fan_in), scale),
            "bias": np.zeros(self.out_features, dtype=np.float32),
        }

    def forward(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Forward pass; ``out`` (optional, ``(out_features,)`` float32) is a
        reusable output buffer — same values, no allocation."""
        self.check_input(x)
        backend = active_backend()
        flat = x.reshape(-1)
        if out is not None:
            backend.gemm(self.params["weight"], flat, out=out)
            out += self.params["bias"]
            return out
        result = backend.gemm(self.params["weight"], flat) + self.params["bias"]
        return result.astype(np.float32, copy=False)

    def count_flops(self) -> float:
        self._require_built()
        return 2.0 * self.in_features * self.out_features

    def config(self) -> dict:
        return {"out_features": self.out_features}
