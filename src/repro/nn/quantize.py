"""Feature-data quantization for cheaper snapshot transfer.

The paper ships feature data as full-precision text (~18 bytes/value),
which dominates partial-inference snapshots.  An obvious extension —
standard in the collaborative-intelligence literature that followed
Neurosurgeon — is to quantize the feature tensor before transmission.
This module implements linear (affine) quantization to arbitrary bit
widths plus the transfer-size accounting, so the ablation harness can
measure the *real* accuracy impact: quantize the feature at the offload
point, dequantize at the server, run the rear network, compare labels.

``pack_codes``/``unpack_codes`` actually bit-pack the codes (``bits``
per value, MSB first, byte-padded at the end), so
:attr:`QuantizedTensor.size_bytes` is not just bookkeeping — it equals
``len(tensor.pack()) + QUANT_HEADER_BYTES``, the bytes a wire transfer
would really carry.  The plan compiler's int8 steps
(:mod:`repro.nn.plan`) and the partition optimizer's quantized-transfer
pricing (:func:`packed_feature_bytes`) build on the same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

#: per-tensor header: shape, scale, zero point, bit width
QUANT_HEADER_BYTES = 64

#: wire bytes per output channel of a per-channel tensor: one float32
#: scale plus one float32 zero point
CHANNEL_PARAM_BYTES = 8


def pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Bit-pack unsigned codes at ``bits`` per value into a uint8 array.

    Values are written MSB first, back to back, with the final byte
    zero-padded — so the packed length is ``ceil(count * bits / 8)``,
    exactly what :attr:`QuantizedTensor.size_bytes` charges (plus the
    header).  Works for any width in [1, 16], including odd ones.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.ascontiguousarray(codes, dtype=np.uint16).ravel()
    if flat.size and int(flat.max()) >> bits:
        raise ValueError(f"codes exceed {bits}-bit range")
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint16)
    bit_matrix = ((flat[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel())


def unpack_codes(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`: recover ``count`` codes."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    raw = np.unpackbits(
        np.ascontiguousarray(packed, dtype=np.uint8), count=count * bits
    )
    matrix = raw.reshape(count, bits).astype(np.uint32)
    weights = (1 << np.arange(bits - 1, -1, -1, dtype=np.uint32))
    return (matrix * weights).sum(axis=1, dtype=np.uint32).astype(np.uint16)


def packed_feature_bytes(
    shape_or_count: Union[int, Sequence[int]], bits: int = 8
) -> int:
    """Wire bytes of a bit-packed quantized tensor (codes + header).

    The quantized counterpart of
    :func:`repro.nn.tensor.text_serialized_bytes` — what the partition
    optimizer prices when a split ships a quantized feature tensor.
    """
    if isinstance(shape_or_count, (int, np.integer)):
        count = int(shape_or_count)
    else:
        count = 1
        for dim in shape_or_count:
            count *= int(dim)
    return (count * bits + 7) // 8 + QUANT_HEADER_BYTES


@dataclass(frozen=True)
class QuantizedTensor:
    """A linearly quantized tensor and its reconstruction parameters."""

    codes: np.ndarray  # unsigned integer codes
    scale: float
    zero_point: float
    bits: int
    shape: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        """Packed transfer size: ``bits`` per value plus a header.

        Honest accounting: equals ``len(self.pack()) + QUANT_HEADER_BYTES``.
        """
        total_bits = int(self.codes.size) * self.bits
        return (total_bits + 7) // 8 + QUANT_HEADER_BYTES

    def pack(self) -> np.ndarray:
        """The bit-packed wire form of the codes (no header)."""
        return pack_codes(self.codes, self.bits)

    @classmethod
    def from_packed(
        cls,
        packed: np.ndarray,
        scale: float,
        zero_point: float,
        bits: int,
        shape: Sequence[int],
    ) -> "QuantizedTensor":
        """Rebuild a tensor from its packed codes and header fields."""
        count = 1
        for dim in shape:
            count *= int(dim)
        return cls(
            codes=unpack_codes(packed, bits, count),
            scale=scale,
            zero_point=zero_point,
            bits=bits,
            shape=tuple(int(dim) for dim in shape),
        )

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float tensor (lossy)."""
        return (
            self.codes.astype(np.float32) * np.float32(self.scale)
            + np.float32(self.zero_point)
        ).reshape(self.shape)


def quantize_linear(array: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Affine-quantize a float tensor to ``bits``-bit unsigned codes."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.asarray(array, dtype=np.float32).ravel()
    lo = float(flat.min()) if flat.size else 0.0
    hi = float(flat.max()) if flat.size else 0.0
    levels = (1 << bits) - 1
    if hi <= lo:
        scale = 1.0
        codes = np.zeros(flat.shape, dtype=np.uint16)
    else:
        scale = (hi - lo) / levels
        codes = np.clip(np.round((flat - lo) / scale), 0, levels).astype(np.uint16)
    return QuantizedTensor(
        codes=codes,
        scale=scale,
        zero_point=lo,
        bits=bits,
        shape=tuple(np.asarray(array).shape),
    )


@dataclass(frozen=True)
class ChannelQuantizedTensor:
    """A 2-D matrix quantized with one affine (scale, zero point) per row.

    One shared range across all output channels (per-tensor) wastes most
    of the code space on whichever channel has the widest weights; rows
    whose values span a narrow band collapse onto a handful of codes.
    Per-channel quantization — the standard remedy — gives every row its
    own range.  ``scale`` and ``zero_point`` are ``(rows,)`` float32
    arrays; everything else (codes, packing, bit widths) matches
    :class:`QuantizedTensor`, so the two are interchangeable wherever
    broadcasting is done right.
    """

    codes: np.ndarray  # (rows, cols) unsigned integer codes
    scale: np.ndarray  # (rows,) float32
    zero_point: np.ndarray  # (rows,) float32
    bits: int
    shape: Tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        """Packed transfer size: codes + header + per-row scale/zero."""
        total_bits = int(self.codes.size) * self.bits
        return (
            (total_bits + 7) // 8
            + QUANT_HEADER_BYTES
            + int(self.shape[0]) * CHANNEL_PARAM_BYTES
        )

    def pack(self) -> np.ndarray:
        """The bit-packed wire form of the codes (no header)."""
        return pack_codes(self.codes, self.bits)

    @classmethod
    def from_packed(
        cls,
        packed: np.ndarray,
        scale: np.ndarray,
        zero_point: np.ndarray,
        bits: int,
        shape: Sequence[int],
    ) -> "ChannelQuantizedTensor":
        """Rebuild a tensor from its packed codes and header fields."""
        rows, cols = (int(shape[0]), int(shape[1]))
        return cls(
            codes=unpack_codes(packed, bits, rows * cols).reshape(rows, cols),
            scale=np.asarray(scale, dtype=np.float32),
            zero_point=np.asarray(zero_point, dtype=np.float32),
            bits=bits,
            shape=(rows, cols),
        )

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float matrix (lossy), row ranges independent."""
        return (
            self.codes.astype(np.float32) * self.scale[:, None]
            + self.zero_point[:, None]
        ).reshape(self.shape)


def quantize_linear_per_channel(
    matrix: np.ndarray, bits: int = 8
) -> ChannelQuantizedTensor:
    """Affine-quantize each row of a 2-D matrix independently."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    array = np.asarray(matrix, dtype=np.float32)
    if array.ndim != 2:
        raise ValueError(
            f"per-channel quantization needs a 2-D matrix, got shape "
            f"{array.shape}"
        )
    levels = (1 << bits) - 1
    if array.shape[1] == 0:
        lo = np.zeros(array.shape[0], dtype=np.float32)
        span = np.zeros(array.shape[0], dtype=np.float32)
    else:
        lo = array.min(axis=1)
        span = array.max(axis=1) - lo
    degenerate = span <= 0
    scale = np.where(degenerate, 1.0, span / levels).astype(np.float32)
    zero_point = lo.astype(np.float32)
    codes = np.clip(
        np.round((array - zero_point[:, None]) / scale[:, None]), 0, levels
    ).astype(np.uint16)
    codes[degenerate] = 0
    return ChannelQuantizedTensor(
        codes=codes,
        scale=scale,
        zero_point=zero_point,
        bits=bits,
        shape=tuple(array.shape),
    )


def quantization_error(array: np.ndarray, bits: int = 8) -> float:
    """RMS reconstruction error relative to the tensor's value range."""
    quantized = quantize_linear(array, bits)
    restored = quantized.dequantize()
    span = float(np.ptp(array)) or 1.0
    return float(np.sqrt(np.mean((restored - np.asarray(array)) ** 2))) / span


@dataclass
class QuantizationImpact:
    """Measured effect of quantizing the feature at an offload point."""

    model_name: str
    point_label: str
    bits: int
    agreement: float  # fraction of inputs whose top-1 label is unchanged
    text_bytes: int  # baseline: full-precision text serialization
    quantized_bytes: int

    @property
    def size_reduction(self) -> float:
        if self.text_bytes == 0:
            return 0.0
        return 1.0 - self.quantized_bytes / self.text_bytes


def measure_quantization_impact(
    model,
    point_label: str,
    bits: int,
    inputs,
) -> QuantizationImpact:
    """Run front → quantize → dequantize → rear on real inputs.

    ``inputs`` is an iterable of input tensors; agreement compares the
    rear network's argmax on the quantized feature against the unsplit
    model's argmax.
    """
    from repro.nn.tensor import text_serialized_bytes

    point = model.network.point_by_label(point_label)
    front, rear = model.split(point.index)
    agree = 0
    total = 0
    quantized_bytes = 0
    text_bytes = 0
    for image in inputs:
        reference = int(np.argmax(model.inference(image)))
        feature = front.inference(image)
        quantized = quantize_linear(feature, bits)
        approx_label = int(np.argmax(rear.inference(quantized.dequantize())))
        agree += int(approx_label == reference)
        total += 1
        quantized_bytes = quantized.size_bytes
        text_bytes = text_serialized_bytes(feature.shape)
    return QuantizationImpact(
        model_name=model.name,
        point_label=point_label,
        bits=bits,
        agreement=agree / total if total else 0.0,
        text_bytes=text_bytes,
        quantized_bytes=quantized_bytes,
    )
