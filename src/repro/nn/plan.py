"""Graph-level inference optimizer: compiled DAG execution plans.

``compile_plan`` lowers a built :class:`~repro.nn.network.Network` (or any
spine range of one) into an :class:`ExecutionPlan` — a topologically
scheduled DAG of steps plus an interval-colored arena — via four rewrite
families:

* **Constant folding** — ``BatchNorm``/``Scale`` affine transforms are
  folded into the preceding conv's weights (computed in float64, cast to
  float32; within 1e-6 of the reference pass), standalone BN/Scale chains
  collapse to one per-channel affine step, and inference-time ``Dropout``
  (an identity here) is elided outright.
* **Operator fusion** — Conv+bias+ReLU and Dense+ReLU become single steps
  that apply the activation in place on the matmul output.  Fusion and
  folding apply *inside* composite branches too: a branch is lowered with
  the same sequence rewriter as the spine.
* **DAG lowering** — any composite layer exposing ``dag_branches()``
  (:class:`~repro.nn.layers.composite.InceptionModule`,
  :class:`~repro.nn.layers.composite.ResidualBlock`, and future
  composites) is inlined into explicit branch steps plus a join step
  (``concat`` for channel concatenation, ``eltwise`` for the residual
  add).  No opaque sub-plan nodes remain; every step is a first-class
  node of one flat graph.  Steps are scheduled by a stable topological
  sort (Kahn's algorithm over value dependencies, ties broken by
  lowering order — which reproduces the reference execution order, so
  the schedule is deterministic).
* **Arena buffer reuse** — a liveness analysis over the scheduled DAG
  computes each value's live interval; arena slots are assigned by greedy
  interval coloring (linear scan), so a slot is reused the moment its
  previous value dies and the slot count adapts to the graph's width
  (2 for a pure spine, more across live branches) instead of the old
  two-slot ping-pong with per-branch sub-arenas.  A step never writes a
  slot holding any live value — in particular never its own input —
  which :meth:`ExecutionPlan.forward_traced` verifies at runtime.

Equivalence contract: for networks without BatchNorm/Scale the plan's
arithmetic is *bitwise identical* to the reference layer walk (matmul,
in-place bias add and in-place ``maximum`` produce the same bits as their
out-of-place forms, max pooling is an exact reduction, and the schedule
replays the reference data order branch by branch); with folding the
divergence is bounded by float32 rounding of the folded weights
(``tests/test_nn_plan.py`` asserts 1e-6 across the zoo at every offload
point, and ``tests/test_plan_fuzz.py`` fuzzes randomly generated
branch-and-join graphs against the reference walk).  Plans respect
offload points: compilation takes a ``(start, end)`` spine range and no
rewrite ever looks past ``end``, so a ``SplitNetwork``'s front and rear
plans are independent and fusion never crosses the split — even when the
range boundary falls between branch-and-join stages.

``plan.forward_batch(xs)`` runs N inputs through one stacked
im2col/broadcast-matmul per step — the edge server uses it to batch
concurrent partial-inference sessions.

Every hot kernel a step executes — im2col, GEMM, pooling, activation,
LRN, the joins — goes through a :class:`~repro.nn.backend.KernelBackend`
bound to the plan at compile/restore time (``reference`` reproduces the
exact pre-backend numpy calls bitwise; ``tuned`` runs float32
end-to-end).  The backend name is part of the plan's identity: it lands
in :func:`plan_cache_key` and in ``Network.plan_for``'s memo key, so
switching backends can never serve a plan compiled under the other one.

``compile_plan(..., quantize_bits=8)`` additionally rewrites conv/fc
steps into :class:`QuantizedConvStep`/:class:`QuantizedFCStep`: weights
are affine-quantized per layer (:mod:`repro.nn.quantize`) and multiplied
through :meth:`~repro.nn.backend.KernelBackend.quantized_gemm` — a
dequant-free integer GEMM on backends that support it, a cached
dequantized float32 matmul otherwise.  ``PlanStats.quantized`` counts
the rewritten steps (exported as ``quantized_steps_total``).

The default-on switch lives here too: :func:`optimization_enabled`
honours :func:`set_optimization` overrides first, then the
``REPRO_NO_OPTIMIZE`` environment variable (the CLI's ``--no-optimize``
sets both, so forked pool workers inherit it).

Compiled plans can also persist *across* processes: with a plan cache
configured (``--plan-cache-dir`` / ``REPRO_PLAN_CACHE``, see
:mod:`repro.exec.cache`), :func:`load_or_compile_plan` serializes each
freshly compiled plan — step graph, folded operands, arena slot
assignment — through :func:`plan_to_descriptor` and rehydrates it in
later processes through :func:`plan_from_descriptor`, skipping
lowering/scheduling/coloring entirely.  A rehydrated plan re-binds to the
live network's layer objects and is bitwise-identical to a fresh compile;
corrupt or unbindable entries degrade to a silent recompile.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import os
import time
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.backend import KernelBackend, active_backend_name, get_backend
from repro.nn.layers.activation import DropoutLayer, ReLULayer
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNormLayer, ScaleLayer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import FCLayer
from repro.nn.layers.exits import ExitHead
from repro.nn.layers.io import InputLayer
from repro.nn.layers.normalization import LRNLayer
from repro.nn.layers.pool import PoolLayer
from repro.nn.tensor import im2col, im2col_batch, max_pool_strided

#: set to any non-empty value to disable plan execution process-wide
#: (the CLI's ``--no-optimize`` exports it so pool workers inherit it)
NO_OPTIMIZE_ENV = "REPRO_NO_OPTIMIZE"

_OPTIMIZE_OVERRIDE: Optional[bool] = None


def optimization_enabled() -> bool:
    """Whether ``Network.forward`` should execute through compiled plans."""
    if _OPTIMIZE_OVERRIDE is not None:
        return _OPTIMIZE_OVERRIDE
    return not os.environ.get(NO_OPTIMIZE_ENV)


def set_optimization(enabled: Optional[bool]) -> None:
    """Force plans on/off process-wide; ``None`` restores the env default."""
    global _OPTIMIZE_OVERRIDE
    _OPTIMIZE_OVERRIDE = enabled


class PlanGraphError(RuntimeError):
    """The lowered step graph is not a schedulable DAG."""


@dataclass
class PlanStats:
    """Compile-time accounting for one plan."""

    steps: int = 0
    folded: int = 0  # BatchNorm/Scale layers constant-folded away
    elided: int = 0  # inference-time Dropout layers removed
    fused: int = 0  # ReLU activations fused into conv/fc steps
    fallbacks: int = 0  # steps that call the reference layer forward
    branches: int = 0  # composite branch sequences inlined into the DAG
    joins: int = 0  # concat/eltwise join steps
    quantized: int = 0  # conv/fc steps rewritten to quantized kernels
    arena_slots: int = 0  # interval-colored arena buffers
    arena_bytes: int = 0  # bytes of preallocated arena slots
    reuse_bytes_per_forward: int = 0  # arena bytes written per forward


class PlanStep:
    """One compiled DAG node: reads its input values, produces one value.

    ``inputs`` lists the value ids this step reads (value 0 is the plan's
    input; step ``i`` in schedule order defines value ``i + 1``).
    ``arena`` steps receive a preallocated output view (never aliasing any
    live value); non-arena steps allocate like the reference path.
    ``layers`` lists ``(spine_index, layer, counted)`` triples covering the
    source layers — ``counted`` is False for layers whose arithmetic was
    folded away, which is what :func:`plan_costs` prices.
    """

    kind = "step"
    arena = False

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        out_shape: Tuple[int, ...],
    ):
        self.name = name
        self.layers = list(layers)
        self.out_shape = tuple(out_shape)
        self.out_elements = 1
        for dim in self.out_shape:
            self.out_elements *= dim
        #: value ids read by this step; assigned during lowering
        self.inputs: List[int] = []
        #: value id defined by this step; assigned during scheduling
        self.output = -1
        #: arena slot index (interval coloring), None for non-arena steps
        self.slot: Optional[int] = None
        self._out_view: Optional[np.ndarray] = None
        #: kernel backend, bound by the owning plan before any run()
        self.backend: KernelBackend = get_backend("reference")

    @property
    def spine_index(self) -> int:
        return self.layers[0][0]

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        raise NotImplementedError

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, out={self.out_shape})"


class ConvStep(PlanStep):
    """im2col + matmul with pre-folded operands and optional fused ReLU."""

    kind = "conv"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ConvLayer,
        operands: Sequence[Tuple[np.ndarray, np.ndarray]],
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.operands = list(operands)
        self.relu = relu

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        layer = self.layer
        backend = self.backend
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        out2d = out.reshape(filters, positions)
        if layer.groups == 1:
            matrix, bias = self.operands[0]
            buffer = layer._cols_buffer(x.shape[0], out_h, out_w)
            cols = backend.im2col(
                x, layer.kernel, layer.stride, layer.pad, out=buffer
            )
            backend.gemm(matrix, cols, out=out2d)
            out2d += bias
        else:
            per_in = x.shape[0] // layer.groups
            per_out = filters // layer.groups
            buffer = layer._cols_buffer(per_in, out_h, out_w)
            for group, (matrix, bias) in enumerate(self.operands):
                x_slice = x[group * per_in : (group + 1) * per_in]
                cols = backend.im2col(
                    x_slice, layer.kernel, layer.stride, layer.pad, out=buffer
                )
                target = out2d[group * per_out : (group + 1) * per_out]
                backend.gemm(matrix, cols, out=target)
                target += bias
        if self.relu:
            backend.relu_inplace(out2d)
        return out

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (xs,) = inputs
        layer = self.layer
        backend = self.backend
        count = xs.shape[0]
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        if layer.groups == 1:
            matrix, bias = self.operands[0]
            cols = backend.im2col_batch(xs, layer.kernel, layer.stride, layer.pad)
            out = backend.gemm(matrix, cols)  # (N, F, P) via broadcast
            out += bias
        else:
            per_in = xs.shape[1] // layer.groups
            per_out = filters // layer.groups
            out = np.empty((count, filters, positions), dtype=np.float32)
            for group, (matrix, bias) in enumerate(self.operands):
                cols = backend.im2col_batch(
                    xs[:, group * per_in : (group + 1) * per_in],
                    layer.kernel, layer.stride, layer.pad,
                )
                target = out[:, group * per_out : (group + 1) * per_out]
                backend.gemm(matrix, cols, out=target)
                target += bias
        if self.relu:
            backend.relu_inplace(out)
        return out.reshape((count,) + self.out_shape)


class FCStep(PlanStep):
    """Dense matmul with optional fused ReLU."""

    kind = "fc"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: FCLayer,
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.relu = relu

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        backend = self.backend
        flat = inputs[0].reshape(-1)
        if out is not None:
            backend.gemm(self.layer.params["weight"], flat, out=out)
            out += self.layer.params["bias"]
            result = out
        else:
            result = backend.gemm(self.layer.params["weight"], flat)
            result = result + self.layer.params["bias"]
        if self.relu:
            backend.relu_inplace(result)
        return result

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        backend = self.backend
        xs = inputs[0]
        flat = xs.reshape(xs.shape[0], -1)
        out = backend.gemm(flat, self.layer.params["weight"].T)
        out += self.layer.params["bias"]
        if self.relu:
            backend.relu_inplace(out)
        return out


class PoolStep(PlanStep):
    """Pooling into an arena buffer (strided in-place maxima for max)."""

    kind = "pool"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: PoolLayer,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        return self.backend.pool(self.layer, inputs[0], out)

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (xs,) = inputs
        layer = self.layer
        if layer.mode == "max":
            return self.backend.max_pool_batch(layer, xs)
        return np.stack(
            [
                self.backend.pool(layer, xs[index], None)
                for index in range(xs.shape[0])
            ]
        )


class ReLUStep(PlanStep):
    """Standalone ReLU (not adjacent to a fusable conv/fc) into the arena."""

    kind = "relu"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ReLULayer,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        if out is not None:
            return self.backend.relu(inputs[0], out.reshape(inputs[0].shape))
        return self.backend.relu(inputs[0])

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return self.backend.relu(inputs[0])


class AffineStep(PlanStep):
    """A standalone BatchNorm/Scale chain folded to ``y = x*s + t``."""

    kind = "affine"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        out_shape: Tuple[int, ...],
        scale: np.ndarray,
        shift: Optional[np.ndarray],
    ):
        super().__init__(name, layers, out_shape)
        self.scale = scale[:, None, None]
        self.shift = shift[:, None, None] if shift is not None else None

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        np.multiply(inputs[0], self.scale, out=out)
        if self.shift is not None:
            out += self.shift
        return out

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        out = inputs[0] * self.scale[None]
        if self.shift is not None:
            out += self.shift[None]
        return out


class FallbackStep(PlanStep):
    """Reference execution for kinds without a rewritten kernel (LRN,
    softmax, average pooling's summation order, …) — calls the layer's own
    ``forward``, so the step is bitwise-trivially equivalent."""

    def __init__(self, name: str, layers: Sequence[Tuple[int, Layer, bool]],
                 layer: Layer):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.kind = layer.kind

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        return self.layer.forward(inputs[0])

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (xs,) = inputs
        return np.stack([self.layer.forward(xs[index])
                         for index in range(xs.shape[0])])


class LRNStep(FallbackStep):
    """LRN through the backend's dedicated kernel.

    The batched math is the per-sample prefix-sum formulation applied
    along axis 1, so every sample sees the identical accumulation order —
    on the reference backend, bitwise equal to N reference forwards.
    """

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        return self.backend.lrn(self.layer, inputs[0])

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return self.backend.lrn_batch(self.layer, inputs[0])


class ConcatStep(PlanStep):
    """Join node: branch outputs concatenated channel-wise into the arena.

    Reads one value per branch (in branch order — the same order the
    reference composite concatenates in, so the copy is bitwise equal).
    """

    kind = "concat"
    arena = True

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        return self.backend.concat(inputs, 0, out)

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return self.backend.concat(inputs, 1)


class EltwiseAddStep(PlanStep):
    """Join node: elementwise sum of branch outputs (the residual add).

    Accumulates left to right, matching ``body + shortcut`` on the
    reference path bit for bit.
    """

    kind = "eltwise"
    arena = True

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        return self.backend.eltwise_sum(inputs, out)

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return self.backend.eltwise_sum(inputs)


class QuantizedMatrix:
    """A per-layer affine-quantized weight matrix for quantized plan steps.

    Wraps a :class:`~repro.nn.quantize.QuantizedTensor` (per-tensor) or
    :class:`~repro.nn.quantize.ChannelQuantizedTensor` (one scale/zero
    point per output row) of a 2-D matmul operand and lazily caches the
    three derived forms backends need: the dequantized float32 matrix
    (the fallback path), the int32 code matrix, and its row sums (the
    rank-1 correction of the dequant-free integer GEMM).  All three are
    computed at most once per plan.  ``per_channel`` tells backends (and
    the plan cache) whether ``scale``/``zero_point`` are scalars or
    ``(rows,)`` arrays.
    """

    def __init__(self, quantized) -> None:
        self.quantized = quantized
        self.codes = quantized.codes
        self.scale = quantized.scale
        self.zero_point = quantized.zero_point
        self.bits = quantized.bits
        self.shape = tuple(quantized.shape)
        self.per_channel = np.ndim(quantized.scale) > 0
        self._dequantized: Optional[np.ndarray] = None
        self._codes_i32: Optional[np.ndarray] = None
        self._row_sums: Optional[np.ndarray] = None

    @classmethod
    def from_array(
        cls, matrix: np.ndarray, bits: int, per_channel: bool = False
    ) -> "QuantizedMatrix":
        from repro.nn.quantize import quantize_linear, quantize_linear_per_channel

        if per_channel:
            return cls(quantize_linear_per_channel(matrix, bits))
        return cls(quantize_linear(matrix, bits))

    def dequantized(self) -> np.ndarray:
        if self._dequantized is None:
            self._dequantized = np.ascontiguousarray(
                self.quantized.dequantize(), dtype=np.float32
            )
        return self._dequantized

    def codes_i32(self) -> np.ndarray:
        if self._codes_i32 is None:
            self._codes_i32 = np.ascontiguousarray(
                self.codes.astype(np.int32).reshape(self.shape)
            )
        return self._codes_i32

    def row_sums(self) -> np.ndarray:
        if self._row_sums is None:
            self._row_sums = (
                self.codes_i32().sum(axis=1, dtype=np.int64).astype(np.float32)
            )
        return self._row_sums


class QuantizedConvStep(PlanStep):
    """Conv with ``bits``-bit quantized weights through ``quantized_gemm``.

    Operands are ``(QuantizedMatrix, float32 bias column)`` per group —
    the bias (and the im2col, the activation, the layout) are exactly
    :class:`ConvStep`'s; only the weight matmul is replaced.  Outputs are
    within the affine reconstruction error of the float step, which the
    eval-set agreement checks pin to unchanged top-1 labels at 8 bits.
    """

    kind = "qconv"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ConvLayer,
        operands: Sequence[Tuple[QuantizedMatrix, np.ndarray]],
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.operands = list(operands)
        self.relu = relu

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        (x,) = inputs
        layer = self.layer
        backend = self.backend
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        out2d = out.reshape(filters, positions)
        if layer.groups == 1:
            qmatrix, bias = self.operands[0]
            buffer = layer._cols_buffer(x.shape[0], out_h, out_w)
            cols = backend.im2col(
                x, layer.kernel, layer.stride, layer.pad, out=buffer
            )
            backend.quantized_gemm(qmatrix, cols, out=out2d)
            out2d += bias
        else:
            per_in = x.shape[0] // layer.groups
            per_out = filters // layer.groups
            buffer = layer._cols_buffer(per_in, out_h, out_w)
            for group, (qmatrix, bias) in enumerate(self.operands):
                x_slice = x[group * per_in : (group + 1) * per_in]
                cols = backend.im2col(
                    x_slice, layer.kernel, layer.stride, layer.pad, out=buffer
                )
                target = out2d[group * per_out : (group + 1) * per_out]
                backend.quantized_gemm(qmatrix, cols, out=target)
                target += bias
        if self.relu:
            backend.relu_inplace(out2d)
        return out

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        (xs,) = inputs
        layer = self.layer
        backend = self.backend
        count = xs.shape[0]
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        if layer.groups == 1:
            qmatrix, bias = self.operands[0]
            cols = backend.im2col_batch(xs, layer.kernel, layer.stride, layer.pad)
            out = backend.quantized_gemm(qmatrix, cols)
            out += bias
        else:
            per_in = xs.shape[1] // layer.groups
            per_out = filters // layer.groups
            out = np.empty((count, filters, positions), dtype=np.float32)
            for group, (qmatrix, bias) in enumerate(self.operands):
                cols = backend.im2col_batch(
                    xs[:, group * per_in : (group + 1) * per_in],
                    layer.kernel, layer.stride, layer.pad,
                )
                target = out[:, group * per_out : (group + 1) * per_out]
                backend.quantized_gemm(qmatrix, cols, out=target)
                target += bias
        if self.relu:
            backend.relu_inplace(out)
        return out.reshape((count,) + self.out_shape)


class QuantizedFCStep(PlanStep):
    """Dense matmul with a ``bits``-bit quantized weight matrix."""

    kind = "qfc"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: FCLayer,
        qmatrix: QuantizedMatrix,
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.qmatrix = qmatrix
        self.relu = relu

    def run(
        self, inputs: Sequence[np.ndarray], out: Optional[np.ndarray]
    ) -> np.ndarray:
        backend = self.backend
        flat = inputs[0].reshape(-1)
        result = backend.quantized_gemm(self.qmatrix, flat, out=out)
        if out is None:
            result = result + self.layer.params["bias"]
        else:
            result += self.layer.params["bias"]
        if self.relu:
            backend.relu_inplace(result)
        return result

    def run_batch(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        backend = self.backend
        xs = inputs[0]
        flat = xs.reshape(xs.shape[0], -1)
        out = backend.gemm(flat, self.qmatrix.dequantized().T)
        out += self.layer.params["bias"]
        if self.relu:
            backend.relu_inplace(out)
        return out


class ExecutionPlan:
    """A compiled spine range: a scheduled step DAG + interval-colored arena.

    Arena discipline: liveness analysis assigns each arena step a slot no
    *live* value occupies — in particular a step never writes the slot any
    of its inputs live in (asserted by the aliasing test via
    :meth:`forward_traced`).  The final value is copied out of the arena
    before being returned, so callers own their result like on the
    reference path.
    """

    def __init__(
        self,
        name: str,
        steps: Sequence[PlanStep],
        input_shape: Tuple[int, ...],
        output_shape: Tuple[int, ...],
        stats: PlanStats,
        witnesses: Sequence[Tuple[Layer, str, np.ndarray]],
        backend: Optional[str] = None,
    ):
        self.name = name
        self.steps = _topological_schedule(steps)
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(output_shape)
        self.stats = stats
        self._witnesses = list(witnesses)
        self.forwards = 0
        self.batch_forwards = 0
        self.batch_sizes: List[int] = []
        self.arena_bytes_reused = 0
        self._bind_backend(backend)
        self._analyze_liveness()
        self._finalize_arena()

    def _bind_backend(self, backend: Optional[str]) -> None:
        """Resolve and bind one kernel backend onto every step.

        Bound once per plan (compile or restore), not looked up per call:
        a plan must never mix backends mid-forward, and the plan caches
        key on the backend name so a later ``set_backend`` compiles a new
        plan instead of mutating this one.
        """
        self.backend_name = backend or active_backend_name()
        instance = get_backend(self.backend_name)
        for step in self.steps:
            step.backend = instance

    # -- liveness ---------------------------------------------------------------
    def _analyze_liveness(self) -> None:
        """Live interval of every value: defined at ``output - 1``, dead
        after its last reading step (the plan result stays live to the
        end)."""
        last_use = [0] * (len(self.steps) + 1)
        for position, step in enumerate(self.steps):
            for value_id in step.inputs:
                last_use[value_id] = position
        if self.steps:
            last_use[self.steps[-1].output] = len(self.steps)
        self._last_use = last_use

    # -- arena ----------------------------------------------------------------
    def _finalize_arena(self) -> None:
        self._allocate_arena(self._color_arena())

    def _color_arena(self) -> List[int]:
        """Greedy interval coloring (linear scan) over the schedule.

        A slot freed by a dead value is reused for the best-fitting later
        value (smallest sufficient capacity, else grow the largest free
        slot); values live at the same step never share a slot, so no
        output can clobber a value still needed — including the step's own
        inputs, which are live while it writes.  Returns the slot
        capacities (in elements); the assignment itself lands on
        ``step.slot``.
        """
        capacities: List[int] = []
        free: List[int] = []
        active: Dict[int, int] = {}  # value id -> slot
        for position, step in enumerate(self.steps):
            for value_id, slot in list(active.items()):
                if self._last_use[value_id] < position:
                    free.append(slot)
                    del active[value_id]
            if not step.arena:
                step.slot = None
                continue
            need = step.out_elements
            if free:
                fitting = [s for s in free if capacities[s] >= need]
                if fitting:
                    slot = min(fitting, key=lambda s: (capacities[s], s))
                else:
                    slot = max(free, key=lambda s: (capacities[s], s))
                    capacities[slot] = need
                free.remove(slot)
            else:
                slot = len(capacities)
                capacities.append(need)
            step.slot = slot
            active[step.output] = slot
        return capacities

    def _allocate_arena(self, capacities: Sequence[int]) -> None:
        """Allocate slot buffers and bind each arena step's output view.

        Validates the assignment first (slots exist and fit), so a plan
        rehydrated from a cached descriptor can't bind an out-of-range or
        undersized view.
        """
        for step in self.steps:
            if not step.arena:
                continue
            slot = step.slot
            if (
                slot is None
                or not 0 <= slot < len(capacities)
                or capacities[slot] < step.out_elements
            ):
                raise PlanGraphError(
                    f"step {step.name!r} has invalid arena slot {slot!r}"
                )
        self._slots = [
            np.empty(capacity, dtype=np.float32) for capacity in capacities
        ]
        for step in self.steps:
            if step.arena:
                step._out_view = self._slots[step.slot][
                    : step.out_elements
                ].reshape(step.out_shape)
        self.stats.arena_slots = len(self._slots)
        self.stats.arena_bytes = 4 * sum(capacities)
        self.stats.reuse_bytes_per_forward = sum(
            step.out_elements * 4 for step in self.steps if step.arena
        )

    def _verify_slots(self) -> None:
        """Check a restored slot assignment against the liveness intervals.

        Replays the coloring loop but *verifies* instead of assigning: no
        step may write a slot any live value occupies.  A descriptor that
        passed the digest check but carries a corrupted assignment fails
        here loudly instead of corrupting activations silently.
        """
        active: Dict[int, int] = {}  # value id -> slot
        for position, step in enumerate(self.steps):
            for value_id, slot in list(active.items()):
                if self._last_use[value_id] < position:
                    del active[value_id]
            if not step.arena:
                continue
            if step.slot in active.values():
                raise PlanGraphError(
                    f"step {step.name!r} writes arena slot {step.slot} "
                    "while a live value occupies it"
                )
            active[step.output] = step.slot

    @classmethod
    def restore(
        cls,
        name: str,
        steps: Sequence[PlanStep],
        input_shape: Sequence[int],
        output_shape: Sequence[int],
        stats: PlanStats,
        witnesses: Sequence[Tuple[Layer, str, np.ndarray]],
        capacities: Sequence[int],
        backend: Optional[str] = None,
    ) -> "ExecutionPlan":
        """Rebuild a plan from already-scheduled steps (the cache path).

        The steps must arrive in schedule order with value ids already
        remapped (step ``i`` defines value ``i + 1``); the schedule and
        the slot assignment are *verified*, not trusted — a descriptor
        that doesn't satisfy the DAG and arena invariants raises
        :class:`PlanGraphError` and the caller recompiles.
        """
        plan = cls.__new__(cls)
        plan.name = name
        plan.steps = list(steps)
        plan._bind_backend(backend)
        for position, step in enumerate(plan.steps):
            if step.output != position + 1:
                raise PlanGraphError(
                    f"restored step {step.name!r} defines value "
                    f"{step.output}, expected {position + 1}"
                )
            for value_id in step.inputs:
                if not 0 <= value_id <= position:
                    raise PlanGraphError(
                        f"restored step {step.name!r} reads value "
                        f"{value_id} before it is defined"
                    )
        plan.input_shape = tuple(input_shape)
        plan.output_shape = tuple(output_shape)
        plan.stats = stats
        plan._witnesses = list(witnesses)
        plan.forwards = 0
        plan.batch_forwards = 0
        plan.batch_sizes = []
        plan.arena_bytes_reused = 0
        plan._analyze_liveness()
        plan._verify_slots()
        plan._allocate_arena(list(capacities))
        return plan

    # -- validity --------------------------------------------------------------
    def is_valid(self) -> bool:
        """True while every captured parameter array is still installed.

        Loaders replace ``layer.params[...]`` wholesale; an identity
        mismatch means the folded/captured operands are stale and the plan
        must be recompiled (mirrors the conv operand cache's rule).
        """
        return all(
            layer.params.get(key) is array
            for layer, key, array in self._witnesses
        )

    # -- execution -------------------------------------------------------------
    def _check_input(self, value: np.ndarray) -> None:
        if tuple(value.shape) != self.input_shape:
            raise ValueError(
                f"plan {self.name!r} expects input shape {self.input_shape}, "
                f"got {tuple(value.shape)}"
            )

    def _execute(self, value: np.ndarray) -> np.ndarray:
        """Run the schedule; the result may live in this plan's arena."""
        values: List[Optional[np.ndarray]] = [None] * (len(self.steps) + 1)
        values[0] = value
        for step in self.steps:
            inputs = [values[value_id] for value_id in step.inputs]
            values[step.output] = step.run(
                inputs, step._out_view if step.arena else None
            )
        return values[self.steps[-1].output] if self.steps else value

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One sample through the compiled steps; caller owns the result."""
        value = np.asarray(x, dtype=np.float32)
        self._check_input(value)
        result = self._execute(value)
        self.forwards += 1
        self.arena_bytes_reused += self.stats.reuse_bytes_per_forward
        if self._value_in_arena(result):
            result = result.copy()
        return result

    def forward_traced(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, List[Dict[str, object]]]:
        """Like :meth:`forward` but records, per step, whether the step's
        output buffer aliases any of its inputs (``output_aliases_input``)
        or any *other* value still live (``output_clobbers_live``) — the
        arena-safety invariants the tests assert (both must always be
        False)."""
        value = np.asarray(x, dtype=np.float32)
        self._check_input(value)
        values: List[Optional[np.ndarray]] = [None] * (len(self.steps) + 1)
        values[0] = value
        trace: List[Dict[str, object]] = []
        for position, step in enumerate(self.steps):
            inputs = [values[value_id] for value_id in step.inputs]
            aliases = False
            clobbers = False
            if step.arena:
                out = step._out_view
                aliases = any(
                    np.shares_memory(argument, out) for argument in inputs
                )
                live = [
                    values[value_id]
                    for value_id in range(len(values))
                    if values[value_id] is not None
                    and self._last_use[value_id] >= position
                    and value_id not in step.inputs
                ]
                clobbers = any(
                    np.shares_memory(other, out) for other in live
                )
                values[step.output] = step.run(inputs, out)
            else:
                values[step.output] = step.run(inputs, None)
            trace.append(
                {
                    "step": step.name,
                    "kind": step.kind,
                    "arena": step.arena,
                    "slot": step.slot,
                    "output_aliases_input": aliases,
                    "output_clobbers_live": clobbers,
                }
            )
        result = values[self.steps[-1].output] if self.steps else value
        if self._value_in_arena(result):
            result = result.copy()
        return result, trace

    def _value_in_arena(self, value: np.ndarray) -> bool:
        return any(np.shares_memory(value, slot) for slot in self._slots)

    def forward_batch(self, xs) -> np.ndarray:
        """Run N inputs through one stacked kernel per step.

        ``xs`` is a sequence of per-sample arrays (or an ``(N, ...)``
        array); returns the stacked ``(N, ...)`` outputs.  Matches N calls
        of :meth:`forward` within float32 GEMM reassociation (1e-6).
        """
        value = np.asarray(xs, dtype=np.float32)
        if value.ndim == len(self.input_shape):
            value = value[None]
        if tuple(value.shape[1:]) != self.input_shape:
            raise ValueError(
                f"plan {self.name!r} expects batch shape (N,) + "
                f"{self.input_shape}, got {tuple(value.shape)}"
            )
        result = self._execute_batch(value)
        self.batch_forwards += 1
        self.batch_sizes.append(int(value.shape[0]))
        return result

    def _execute_batch(self, value: np.ndarray) -> np.ndarray:
        values: List[Optional[np.ndarray]] = [None] * (len(self.steps) + 1)
        values[0] = value
        for step in self.steps:
            values[step.output] = step.run_batch(
                [values[value_id] for value_id in step.inputs]
            )
        return values[self.steps[-1].output] if self.steps else value

    # -- reporting -------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "plan": self.name,
            "backend": self.backend_name,
            "steps": stats.steps,
            "layers_folded": stats.folded,
            "layers_elided": stats.elided,
            "steps_fused": stats.fused,
            "fallback_steps": stats.fallbacks,
            "branches": stats.branches,
            "joins": stats.joins,
            "quantized_steps": stats.quantized,
            "arena_slots": stats.arena_slots,
            "arena_bytes": stats.arena_bytes,
            "arena_bytes_reused_per_forward": stats.reuse_bytes_per_forward,
            "forwards": self.forwards,
            "batch_forwards": self.batch_forwards,
        }

    def describe_text(self) -> str:
        """Human-readable one-plan summary (the CLI's ``repro metrics``)."""
        stats = self.stats
        return (
            f"plan {self.name}: {stats.steps} steps "
            f"({stats.fused} fused, {stats.folded} folded, "
            f"{stats.elided} elided, {stats.fallbacks} fallback, "
            f"{stats.branches} branches, {stats.joins} joins), "
            f"arena {stats.arena_bytes / 1024:.0f} KiB in "
            f"{stats.arena_slots} slots "
            f"(reuses {stats.reuse_bytes_per_forward / 1024:.0f} KiB/forward)"
        )

    def record_metrics(self, registry) -> None:
        """Export compile/runtime counters into a metrics registry.

        Called explicitly (``repro metrics``) rather than auto-announced:
        plans compile lazily once per process, so announcing at compile
        time would make merged telemetry depend on worker topology.
        """
        labels = {"plan": self.name}
        stats = self.stats
        registry.counter(
            "plan_layers_folded_total",
            help="BatchNorm/Scale layers constant-folded into other steps",
            **labels,
        ).inc(stats.folded)
        registry.counter(
            "plan_layers_elided_total",
            help="inference-time identity layers removed from the plan",
            **labels,
        ).inc(stats.elided)
        registry.counter(
            "plan_steps_fused_total",
            help="activations fused into the preceding conv/fc step",
            **labels,
        ).inc(stats.fused)
        registry.counter(
            "plan_branches_total",
            help="composite branch sequences inlined into the step DAG",
            **labels,
        ).inc(stats.branches)
        registry.counter(
            "plan_joins_total",
            help="concat/eltwise join steps in the compiled DAG",
            **labels,
        ).inc(stats.joins)
        registry.counter(
            "quantized_steps_total",
            help="conv/fc steps compiled with quantized weights",
            **labels,
        ).inc(stats.quantized)
        registry.gauge(
            "plan_arena_slots",
            help="interval-colored arena buffers", **labels,
        ).set(stats.arena_slots)
        registry.gauge(
            "plan_arena_bytes",
            help="bytes of preallocated arena buffers", **labels,
        ).set(stats.arena_bytes)
        registry.counter(
            "plan_forwards_total",
            help="single-sample forwards executed through the plan", **labels,
        ).inc(self.forwards)
        registry.counter(
            "plan_arena_bytes_reused_total",
            help="bytes written into reused arena buffers instead of fresh "
            "allocations",
            **labels,
        ).inc(self.arena_bytes_reused)
        batch_histogram = registry.histogram(
            "plan_batch_size",
            help="batch sizes seen by forward_batch", **labels,
        )
        for size in self.batch_sizes:
            batch_histogram.observe(size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionPlan({self.name!r}, {len(self.steps)} steps)"


# -- scheduling ------------------------------------------------------------------

def _topological_schedule(steps: Sequence[PlanStep]) -> List[PlanStep]:
    """Kahn's algorithm over value dependencies, stable by lowering order.

    Lowering emits steps in the reference execution order (each value is
    defined before any reader), so the stable sort reproduces that order
    exactly — the schedule is an explicit verification, and a cycle or a
    read of an undefined value is a loud :class:`PlanGraphError` instead
    of silent corruption.  Value ids are reassigned to schedule positions
    (step ``i`` defines value ``i + 1``).
    """
    produced = {0: 0}  # value id -> producing step position + 1
    for position, step in enumerate(steps):
        produced[position + 1] = position + 1
    readers: Dict[int, List[int]] = {}
    pending: List[int] = []
    for position, step in enumerate(steps):
        missing = 0
        for value_id in step.inputs:
            if value_id not in produced:
                raise PlanGraphError(
                    f"step {step.name!r} reads undefined value {value_id}"
                )
            if value_id > 0:
                missing += 1
                readers.setdefault(value_id, []).append(position)
        pending.append(missing)
    scheduled: List[PlanStep] = []
    order: List[int] = [-1] * len(steps)  # old position -> new position
    ready = [
        position for position, missing in enumerate(pending) if missing == 0
    ]
    heapq.heapify(ready)
    while ready:
        # Smallest lowering position first: the lexicographically minimal
        # topological order, which for an already-topological input is the
        # input order itself — independent branch steps interleave exactly
        # as the reference walk does.
        position = heapq.heappop(ready)
        order[position] = len(scheduled)
        scheduled.append(steps[position])
        for reader in readers.get(position + 1, ()):
            pending[reader] -= 1
            if pending[reader] == 0:
                heapq.heappush(ready, reader)
    if len(scheduled) != len(steps):
        stuck = [
            steps[position].name
            for position, missing in enumerate(pending)
            if missing > 0
        ]
        raise PlanGraphError(f"step graph has a cycle through {stuck}")
    remap = {0: 0}
    for old_position, new_position in enumerate(order):
        remap[old_position + 1] = new_position + 1
    for new_position, step in enumerate(scheduled):
        step.output = new_position + 1
        step.inputs = [remap[value_id] for value_id in step.inputs]
    return scheduled


# -- compilation ----------------------------------------------------------------

class _GraphBuilder:
    """Accumulates lowered steps and hands out value ids."""

    def __init__(self) -> None:
        self.steps: List[PlanStep] = []

    def add(self, step: PlanStep, inputs: Sequence[int]) -> int:
        step.inputs = list(inputs)
        self.steps.append(step)
        return len(self.steps)  # value id of this step's output


def _affine_chain(
    chain: Sequence[Layer], channels: int
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Collapse BatchNorm/Scale layers to per-channel ``(scale, shift)``.

    Accumulated in float64 so the single folded affine stays within
    float32 rounding of applying each layer separately.
    """
    scale = np.ones(channels, dtype=np.float64)
    shift = np.zeros(channels, dtype=np.float64)
    has_shift = False
    for layer in chain:
        if isinstance(layer, BatchNormLayer):
            inv_std = 1.0 / np.sqrt(
                layer.params["variance"].astype(np.float64) + layer.eps
            )
            mean = layer.params["mean"].astype(np.float64)
            scale = scale * inv_std
            shift = (shift - mean) * inv_std
            has_shift = True
        elif isinstance(layer, ScaleLayer):
            gamma = layer.params["gamma"].astype(np.float64)
            scale = scale * gamma
            shift = shift * gamma
            if "beta" in layer.params:
                shift = shift + layer.params["beta"].astype(np.float64)
                has_shift = True
        else:  # pragma: no cover - guarded by the caller
            raise TypeError(f"cannot fold layer kind {layer.kind!r}")
    return scale, shift, has_shift


def _witnesses_for(layer: Layer) -> List[Tuple[Layer, str, np.ndarray]]:
    return [(layer, key, array) for key, array in layer.params.items()]


def _folded_conv_operands(
    layer: ConvLayer, chain: Sequence[Layer]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-group matmul operands with the affine chain folded in."""
    scale, shift, _ = _affine_chain(chain, layer.num_filters)
    weight = layer.params["weight"].astype(np.float64)
    bias = layer.params["bias"].astype(np.float64)
    folded_weight = (weight * scale[:, None, None, None]).astype(np.float32)
    folded_bias = (bias * scale + shift).astype(np.float32)
    per_out = layer.num_filters // layer.groups
    return [
        (
            np.ascontiguousarray(
                folded_weight[group * per_out : (group + 1) * per_out].reshape(
                    per_out, -1
                )
            ),
            np.ascontiguousarray(
                folded_bias[group * per_out : (group + 1) * per_out][:, None]
            ),
        )
        for group in range(layer.groups)
    ]


def _lower_sequence(
    graph: _GraphBuilder,
    indexed: Sequence[Tuple[int, Layer]],
    input_id: int,
    *,
    fold: bool,
    fuse: bool,
    stats: PlanStats,
    witnesses: List[Tuple[Layer, str, np.ndarray]],
    prefix: str = "",
) -> int:
    """Lower an ordered layer sequence into graph nodes; returns the value
    id of the sequence's output (``input_id`` itself if every layer was
    elided).  Shared by spine ranges and composite branches — rewrites
    only ever look ahead *within* the given sequence, which is how fusion
    can never cross a split boundary, and composites recurse so nested
    branch-and-join graphs flatten into the same DAG.
    """
    current = input_id
    position = 0
    while position < len(indexed):
        index, layer = indexed[position]
        covered: List[Tuple[int, Layer, bool]] = [(index, layer, True)]
        if isinstance(layer, (InputLayer, DropoutLayer, ExitHead)):
            # Identity at inference time: elided outright (the plan's input
            # shape check replaces InputLayer's validation).  An ExitHead is
            # identity on the *trunk* path; its classifier branch lowers
            # only when ``compile_plan(exit_point=...)`` takes the exit.
            if not isinstance(layer, InputLayer):
                stats.elided += 1
            position += 1
            continue
        if isinstance(layer, ConvLayer):
            chain: List[Layer] = []
            cursor = position + 1
            while (
                fold
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], (BatchNormLayer, ScaleLayer))
            ):
                chain.append(indexed[cursor][1])
                covered.append((indexed[cursor][0], indexed[cursor][1], False))
                cursor += 1
            relu = False
            if (
                fuse
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], ReLULayer)
            ):
                relu = True
                covered.append((indexed[cursor][0], indexed[cursor][1], True))
                cursor += 1
            if chain:
                operands = _folded_conv_operands(layer, chain)
                for folded_layer in chain:
                    witnesses.extend(_witnesses_for(folded_layer))
            else:
                operands = layer._group_operands()
            witnesses.append((layer, "weight", layer.params["weight"]))
            witnesses.append((layer, "bias", layer.params["bias"]))
            name = prefix + layer.name
            current = graph.add(
                ConvStep(name, covered, layer, operands, relu), [current]
            )
            stats.folded += len(chain)
            stats.fused += 1 if relu else 0
            position = cursor
        elif isinstance(layer, FCLayer):
            relu = False
            cursor = position + 1
            if (
                fuse
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], ReLULayer)
            ):
                relu = True
                covered.append((indexed[cursor][0], indexed[cursor][1], True))
                cursor += 1
            current = graph.add(
                FCStep(prefix + layer.name, covered, layer, relu), [current]
            )
            stats.fused += 1 if relu else 0
            position = cursor
        elif fold and isinstance(layer, (BatchNormLayer, ScaleLayer)):
            chain = [layer]
            cursor = position + 1
            while cursor < len(indexed) and isinstance(
                indexed[cursor][1], (BatchNormLayer, ScaleLayer)
            ):
                chain.append(indexed[cursor][1])
                covered.append((indexed[cursor][0], indexed[cursor][1], False))
                cursor += 1
            channels = layer.input_shape[0]
            scale, shift, has_shift = _affine_chain(chain, channels)
            for chained in chain:
                witnesses.extend(_witnesses_for(chained))
            current = graph.add(
                AffineStep(
                    prefix + layer.name,
                    covered,
                    layer.out_shape,
                    scale.astype(np.float32),
                    shift.astype(np.float32) if has_shift else None,
                ),
                [current],
            )
            stats.folded += len(chain) - 1
            position = cursor
        elif isinstance(layer, PoolLayer):
            current = graph.add(
                PoolStep(prefix + layer.name, covered, layer), [current]
            )
            position += 1
        elif isinstance(layer, ReLULayer):
            current = graph.add(
                ReLUStep(prefix + layer.name, covered, layer), [current]
            )
            position += 1
        elif hasattr(layer, "dag_branches"):
            current = _lower_composite(
                graph, index, layer, current,
                fold=fold, fuse=fuse, stats=stats, witnesses=witnesses,
                prefix=prefix,
            )
            position += 1
        else:
            step_type = (
                LRNStep if isinstance(layer, LRNLayer) else FallbackStep
            )
            current = graph.add(
                step_type(prefix + layer.name, covered, layer), [current]
            )
            stats.fallbacks += 1
            position += 1
    return current


def _lower_composite(
    graph: _GraphBuilder,
    index: int,
    layer: Layer,
    input_id: int,
    *,
    fold: bool,
    fuse: bool,
    stats: PlanStats,
    witnesses: List[Tuple[Layer, str, np.ndarray]],
    prefix: str,
) -> int:
    """Inline a composite's branches as first-class DAG nodes plus a join.

    Every branch reads the composite's input value (a shared fan-out
    edge); an empty branch *is* that value (the identity shortcut).  The
    join step reads the branch outputs in declaration order, matching the
    reference forward's concat/add order bit for bit.
    """
    composite = layer.dag_branches()
    branch_outputs: List[int] = []
    for tag, branch in composite.branches:
        if branch:
            branch_outputs.append(
                _lower_sequence(
                    graph,
                    [(index, inner) for inner in branch],
                    input_id,
                    fold=fold,
                    fuse=fuse,
                    stats=stats,
                    witnesses=witnesses,
                    prefix=f"{prefix}{layer.name}/{tag}/",
                )
            )
            stats.branches += 1
        else:
            branch_outputs.append(input_id)
    join_type = ConcatStep if composite.join == "concat" else EltwiseAddStep
    stats.joins += 1
    return graph.add(
        join_type(
            f"{prefix}{layer.name}/{composite.join}",
            [(index, layer, False)],
            layer.out_shape,
        ),
        branch_outputs,
    )


def _quantize_steps(
    steps: Sequence[PlanStep], bits: int, stats: PlanStats
) -> List[PlanStep]:
    """Rewrite conv/fc steps to their quantized forms, preserving ids.

    Each replacement keeps the original step's name, covered layers,
    inputs, and output shape, so the schedule, liveness, and arena
    coloring that follow see an identical graph — only the weight matmul
    kernel changes.
    """
    rewritten: List[PlanStep] = []
    for step in steps:
        # Weight matrices quantize per output channel (one affine range
        # per row): a per-tensor range is hostage to the widest filter
        # and collapses narrow-range rows onto a handful of codes.
        # Activations stay per-tensor (quantized on the fly by backends).
        if type(step) is ConvStep:
            operands = [
                (QuantizedMatrix.from_array(matrix, bits, per_channel=True), bias)
                for matrix, bias in step.operands
            ]
            replacement: PlanStep = QuantizedConvStep(
                step.name, step.layers, step.layer, operands, step.relu
            )
        elif type(step) is FCStep:
            replacement = QuantizedFCStep(
                step.name,
                step.layers,
                step.layer,
                QuantizedMatrix.from_array(
                    step.layer.params["weight"], bits, per_channel=True
                ),
                step.relu,
            )
        else:
            rewritten.append(step)
            continue
        replacement.inputs = list(step.inputs)
        stats.quantized += 1
        rewritten.append(replacement)
    return rewritten


def compile_plan(
    network,
    start: int = 0,
    end: Optional[int] = None,
    *,
    fold: bool = True,
    fuse: bool = True,
    backend: Optional[str] = None,
    quantize_bits: Optional[int] = None,
    exit_point: Optional[int] = None,
) -> ExecutionPlan:
    """Compile spine layers ``start..end`` (inclusive) of a built network.

    The range defaults to the whole spine.  ``fold=False`` keeps
    BatchNorm/Scale as reference fallbacks (bitwise execution even for BN
    models); ``fuse=False`` disables ReLU fusion.  No rewrite considers
    layers outside the range, so front/rear plans of a split are compiled
    independently and fusion never crosses the offload point.

    ``backend`` pins the kernel backend (default: the process-wide active
    one); ``quantize_bits`` rewrites conv/fc steps to ``bits``-bit
    quantized weights after lowering.

    ``exit_point`` takes an early exit: the spine index of an
    :class:`~repro.nn.layers.exits.ExitHead` within the range.  The trunk
    lowers up to (excluding) the exit, the head lowers as a branch
    subgraph hanging off the trunk's last value — the same recursive
    lowering composite branches use — and everything past the attach point
    is pruned: ``end`` collapses to ``exit_point`` and the plan's output
    is the head classifier's.  Without ``exit_point``, exit heads in range
    are identity (elided), so full-network plans are untouched by exits.
    """
    if not network.built:
        raise RuntimeError(
            f"network {network.name!r} must be built before compiling a plan"
        )
    if quantize_bits is not None and not 1 <= quantize_bits <= 16:
        raise ValueError(f"quantize_bits must be in [1, 16], got {quantize_bits}")
    last = len(network.layers) - 1
    if end is None:
        end = last
    if not (0 <= start <= end <= last):
        raise IndexError(
            f"invalid plan range [{start}, {end}] for network "
            f"{network.name!r} with {len(network.layers)} layers"
        )
    exit_layer: Optional[ExitHead] = None
    if exit_point is not None:
        if not start <= exit_point <= end:
            raise IndexError(
                f"exit_point {exit_point} outside plan range "
                f"[{start}, {end}] of network {network.name!r}"
            )
        candidate = network.layers[exit_point]
        if not isinstance(candidate, ExitHead):
            raise ValueError(
                f"layer {exit_point} of {network.name!r} is "
                f"{candidate.kind!r}, not an exit head"
            )
        exit_layer = candidate
        end = exit_point  # the trunk past the exit is pruned
    stats = PlanStats()
    witnesses: List[Tuple[Layer, str, np.ndarray]] = []
    graph = _GraphBuilder()
    if exit_layer is not None:
        trunk = [
            (index, network.layers[index]) for index in range(start, exit_point)
        ]
        current = _lower_sequence(
            graph, trunk, 0, fold=fold, fuse=fuse, stats=stats,
            witnesses=witnesses,
        )
        _lower_sequence(
            graph,
            [(exit_point, inner) for inner in exit_layer.head],
            current,
            fold=fold,
            fuse=fuse,
            stats=stats,
            witnesses=witnesses,
            prefix=f"{exit_layer.name}/exit/",
        )
        stats.branches += 1
    else:
        indexed = [
            (index, network.layers[index]) for index in range(start, end + 1)
        ]
        _lower_sequence(
            graph, indexed, 0, fold=fold, fuse=fuse, stats=stats,
            witnesses=witnesses,
        )
    steps = graph.steps
    if quantize_bits is not None:
        steps = _quantize_steps(steps, quantize_bits, stats)
    stats.steps = len(steps)
    input_shape = (
        network.input_shape if start == 0
        else network.layers[start - 1].out_shape
    )
    if exit_layer is not None:
        output_shape = exit_layer.exit_shape
        name = f"{network.name}[{start}:{end}@{exit_layer.name}]"
    else:
        output_shape = network.layers[end].out_shape
        name = f"{network.name}[{start}:{end}]"
    return ExecutionPlan(
        name,
        steps,
        input_shape,
        output_shape,
        stats,
        witnesses,
        backend=backend,
    )


# -- plan cache: serialization + rehydration --------------------------------------

class PlanCacheError(RuntimeError):
    """A cached plan descriptor cannot be rebound to the live network."""


def _layer_table(network) -> List[Layer]:
    """Every layer reachable from the spine, in deterministic order.

    Spine layers first-to-last; any layer exposing ``dag_branches()``
    recurses into its branches in declaration order (nested composites
    flatten the same way the lowering does).  The table index is the
    serialized identity of a layer: a descriptor stored for a network with
    the same structure maps indices back to the live layer objects.
    """
    table: List[Layer] = []

    def visit(layer: Layer) -> None:
        table.append(layer)
        if hasattr(layer, "dag_branches"):
            for _tag, branch in layer.dag_branches().branches:
                for inner in branch:
                    visit(inner)
        if hasattr(layer, "exit_branch"):
            for inner in layer.exit_branch():
                visit(inner)

    for layer in network.layers:
        visit(layer)
    return table


#: per-process memo of parameter-array digests, keyed by array identity.
#: Params are replaced wholesale (never mutated in place — the same
#: convention the conv operand cache and the plan witnesses rely on), so
#: an identity match means the digest is still valid.  Guarded by a weak
#: reference so a recycled id() can never alias a dead array's digest.
_ARRAY_DIGESTS: Dict[int, Tuple[Any, str]] = {}


def _array_digest(array: np.ndarray) -> str:
    entry = _ARRAY_DIGESTS.get(id(array))
    if entry is not None and entry[0]() is array:
        return entry[1]
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("ascii"))
    digest.update(str(array.shape).encode("ascii"))
    digest.update(np.ascontiguousarray(array).tobytes())
    value = digest.hexdigest()
    if len(_ARRAY_DIGESTS) > 4096:
        for key in [k for k, (ref, _) in _ARRAY_DIGESTS.items() if ref() is None]:
            del _ARRAY_DIGESTS[key]
    try:
        _ARRAY_DIGESTS[id(array)] = (weakref.ref(array), value)
    except TypeError:  # pragma: no cover - ndarray is weakref-able
        pass
    return value


def network_params_digest(network) -> str:
    """Digest of a built network's structure and every parameter array.

    Hashing ~27 MB of GoogLeNet weights costs ~27 ms, so both layers of
    memoization matter: per-array digests are reused across the fresh
    front/rear ``Network`` objects each ``split()`` creates (they share
    the layer objects), and the combined digest is memoized per network
    as long as every parameter array is identity-unchanged.
    """
    table = _layer_table(network)
    arrays: List[np.ndarray] = []
    for layer in table:
        for key in sorted(layer.params):
            arrays.append(layer.params[key])
    memo = getattr(network, "_plan_digest_memo", None)
    if (
        memo is not None
        and len(memo[0]) == len(arrays)
        and all(a is b for a, b in zip(memo[0], arrays))
    ):
        return memo[1]
    digest = hashlib.sha256()
    structure = {
        "input_shape": list(network.input_shape),
        "layers": [layer.describe() for layer in table],
    }
    digest.update(json.dumps(structure, sort_keys=True).encode("utf-8"))
    for array in arrays:
        digest.update(b"\0")
        digest.update(_array_digest(array).encode("ascii"))
    value = digest.hexdigest()
    network._plan_digest_memo = (tuple(arrays), value)
    return value


def plan_cache_key(
    network,
    start: int,
    end: int,
    *,
    fold: bool = True,
    fuse: bool = True,
    backend: Optional[str] = None,
    quantize_bits: Optional[int] = None,
    exit_point: Optional[int] = None,
) -> str:
    """The content address of one compiled plan.

    Keyed like task outcomes: params digest (structure + weights) +
    ``(start, end)`` range + compile options (fold/fuse/backend/
    quantize bits) + repro version + source fingerprint + plan-cache
    format version.  Edit any source line or replace any parameter array
    and every entry misses; there is no mtime or TTL logic.  Backends
    produce equivalent-but-not-identical plans, so sharing an entry
    across them would mask exactly the regressions the equivalence suite
    exists to catch.
    """
    import repro
    from repro.exec.cache import PLAN_CACHE_FORMAT, source_fingerprint

    identity = {
        "network": network.name,
        "params": network_params_digest(network),
        "range": [start, end],
        "fold": bool(fold),
        "fuse": bool(fuse),
        "backend": backend or active_backend_name(),
        "quantize": quantize_bits,
        "exit": exit_point,
        "repro_version": repro.__version__,
        "source": source_fingerprint(),
        "format": PLAN_CACHE_FORMAT,
    }
    canonical = json.dumps(identity, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _step_to_entry(step: PlanStep, ids: Dict[int, int]) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "type": type(step).__name__,
        "name": step.name,
        "out_shape": [int(dim) for dim in step.out_shape],
        "inputs": [int(value_id) for value_id in step.inputs],
        "output": int(step.output),
        "slot": None if step.slot is None else int(step.slot),
        "layers": [
            [int(index), ids[id(layer)], bool(counted)]
            for index, layer, counted in step.layers
        ],
    }
    if isinstance(step, QuantizedConvStep):
        entry["layer"] = ids[id(step.layer)]
        entry["relu"] = bool(step.relu)
        # Quantized codes are the compile product worth persisting: half
        # the bytes of the float operands, and re-quantizing on rehydrate
        # would redo the work the cache exists to skip.
        entry["operands"] = [
            [_qmatrix_to_entry(qmatrix), np.ascontiguousarray(bias)]
            for qmatrix, bias in step.operands
        ]
    elif isinstance(step, QuantizedFCStep):
        entry["layer"] = ids[id(step.layer)]
        entry["relu"] = bool(step.relu)
        entry["qmatrix"] = _qmatrix_to_entry(step.qmatrix)
    elif isinstance(step, ConvStep):
        entry["layer"] = ids[id(step.layer)]
        entry["relu"] = bool(step.relu)
        # Folded operands (BN/Scale baked into the weights) are the
        # expensive compile product and are stored verbatim; unfolded
        # operands are a pure reshape of the live weights, recomputed on
        # rehydrate (keeps entries small and preserves the layer's
        # freeze-on-cache semantics).
        folded = any(not counted for _index, _layer, counted in step.layers)
        entry["operands"] = (
            [
                [np.ascontiguousarray(matrix), np.ascontiguousarray(bias)]
                for matrix, bias in step.operands
            ]
            if folded
            else None
        )
    elif isinstance(step, FCStep):
        entry["layer"] = ids[id(step.layer)]
        entry["relu"] = bool(step.relu)
    elif isinstance(step, AffineStep):
        entry["scale"] = np.ascontiguousarray(step.scale[:, 0, 0])
        entry["shift"] = (
            np.ascontiguousarray(step.shift[:, 0, 0])
            if step.shift is not None
            else None
        )
    elif isinstance(step, (PoolStep, ReLUStep, FallbackStep)):
        # FallbackStep covers LRNStep too (a subclass).
        entry["layer"] = ids[id(step.layer)]
    elif isinstance(step, (ConcatStep, EltwiseAddStep)):
        pass
    else:  # pragma: no cover - every step type above is exhaustive
        raise PlanCacheError(f"unserializable step type {type(step).__name__}")
    return entry


def _qmatrix_to_entry(qmatrix: QuantizedMatrix) -> Dict[str, Any]:
    # Per-channel scale/zero_point are (rows,) float32 arrays; per-tensor
    # ones are Python floats.  The flag disambiguates on the way back in.
    per_channel = bool(qmatrix.per_channel)
    return {
        "codes": np.ascontiguousarray(qmatrix.codes),
        "scale": (
            np.ascontiguousarray(qmatrix.scale, dtype=np.float32)
            if per_channel
            else float(qmatrix.scale)
        ),
        "zero_point": (
            np.ascontiguousarray(qmatrix.zero_point, dtype=np.float32)
            if per_channel
            else float(qmatrix.zero_point)
        ),
        "bits": int(qmatrix.bits),
        "shape": [int(dim) for dim in qmatrix.shape],
        "per_channel": per_channel,
    }


def _qmatrix_from_entry(entry: Dict[str, Any]) -> QuantizedMatrix:
    from repro.nn.quantize import ChannelQuantizedTensor, QuantizedTensor

    shape = tuple(int(dim) for dim in entry["shape"])
    codes = np.ascontiguousarray(entry["codes"], dtype=np.uint16)
    count = 1
    for dim in shape:
        count *= dim
    if codes.size != count:
        raise PlanCacheError("quantized operand codes do not match its shape")
    if entry.get("per_channel"):
        if len(shape) != 2:
            raise PlanCacheError("per-channel operand must be a 2-D matrix")
        scale = np.ascontiguousarray(entry["scale"], dtype=np.float32)
        zero_point = np.ascontiguousarray(
            entry["zero_point"], dtype=np.float32
        )
        if scale.shape != (shape[0],) or zero_point.shape != (shape[0],):
            raise PlanCacheError(
                "per-channel operand scales do not match its row count"
            )
        return QuantizedMatrix(
            ChannelQuantizedTensor(
                codes=codes.reshape(shape),
                scale=scale,
                zero_point=zero_point,
                bits=int(entry["bits"]),
                shape=shape,
            )
        )
    return QuantizedMatrix(
        QuantizedTensor(
            codes=codes,
            scale=float(entry["scale"]),
            zero_point=float(entry["zero_point"]),
            bits=int(entry["bits"]),
            shape=shape,
        )
    )


def _step_from_entry(entry: Dict[str, Any], table: Sequence[Layer]) -> PlanStep:
    type_name = entry["type"]
    name = entry["name"]
    out_shape = tuple(int(dim) for dim in entry["out_shape"])
    try:
        covered = [
            (int(index), table[layer_id], bool(counted))
            for index, layer_id, counted in entry["layers"]
        ]
    except IndexError as exc:
        raise PlanCacheError(f"step {name!r} references unknown layer") from exc

    def bound_layer(expected) -> Layer:
        try:
            layer = table[entry["layer"]]
        except IndexError as exc:
            raise PlanCacheError(
                f"step {name!r} references unknown layer"
            ) from exc
        if not isinstance(layer, expected):
            raise PlanCacheError(
                f"step {name!r} expects a {expected.__name__}, "
                f"got {type(layer).__name__}"
            )
        return layer

    if type_name == "QuantizedConvStep":
        layer = bound_layer(ConvLayer)
        per_out = layer.num_filters // layer.groups
        operands = []
        for qmatrix_entry, bias in entry["operands"]:
            qmatrix = _qmatrix_from_entry(qmatrix_entry)
            if qmatrix.shape[0] != per_out or bias.shape != (per_out, 1):
                raise PlanCacheError(
                    f"step {name!r} has malformed quantized operands"
                )
            operands.append((qmatrix, bias))
        step: PlanStep = QuantizedConvStep(
            name, covered, layer, operands, bool(entry["relu"])
        )
    elif type_name == "QuantizedFCStep":
        layer = bound_layer(FCLayer)
        qmatrix = _qmatrix_from_entry(entry["qmatrix"])
        if qmatrix.shape != (layer.out_features, layer.in_features):
            raise PlanCacheError(
                f"step {name!r} has a malformed quantized weight matrix"
            )
        step = QuantizedFCStep(name, covered, layer, qmatrix, bool(entry["relu"]))
    elif type_name == "ConvStep":
        layer = bound_layer(ConvLayer)
        operands = entry["operands"]
        if operands is None:
            operands = layer._group_operands()
        else:
            per_out = layer.num_filters // layer.groups
            for matrix, bias in operands:
                if matrix.shape[0] != per_out or bias.shape != (per_out, 1):
                    raise PlanCacheError(
                        f"step {name!r} has malformed folded operands"
                    )
            operands = [(matrix, bias) for matrix, bias in operands]
        step: PlanStep = ConvStep(
            name, covered, layer, operands, bool(entry["relu"])
        )
    elif type_name == "FCStep":
        step = FCStep(name, covered, bound_layer(FCLayer), bool(entry["relu"]))
    elif type_name == "PoolStep":
        step = PoolStep(name, covered, bound_layer(PoolLayer))
    elif type_name == "ReLUStep":
        step = ReLUStep(name, covered, bound_layer(ReLULayer))
    elif type_name == "AffineStep":
        shift = entry["shift"]
        step = AffineStep(
            name,
            covered,
            out_shape,
            np.asarray(entry["scale"], dtype=np.float32),
            None if shift is None else np.asarray(shift, dtype=np.float32),
        )
    elif type_name == "LRNStep":
        step = LRNStep(name, covered, bound_layer(LRNLayer))
    elif type_name == "FallbackStep":
        step = FallbackStep(name, covered, bound_layer(Layer))
    elif type_name == "ConcatStep":
        step = ConcatStep(name, covered, out_shape)
    elif type_name == "EltwiseAddStep":
        step = EltwiseAddStep(name, covered, out_shape)
    else:
        raise PlanCacheError(f"unknown cached step type {type_name!r}")
    if tuple(step.out_shape) != out_shape:
        raise PlanCacheError(
            f"step {name!r} output shape drifted: cached {out_shape}, "
            f"live {tuple(step.out_shape)}"
        )
    step.inputs = [int(value_id) for value_id in entry["inputs"]]
    step.output = int(entry["output"])
    step.slot = None if entry["slot"] is None else int(entry["slot"])
    return step


def plan_to_descriptor(plan: ExecutionPlan, network) -> Dict[str, Any]:
    """Serialize a compiled plan to a picklable, network-independent dict.

    Live layer objects become layer-table indices; witness arrays become
    ``(layer, param key)`` references re-bound at load time (a witness on
    a *replaced* array could never rehydrate validly, so a plan whose
    witnesses are already stale refuses to serialize).
    """
    from repro.exec.cache import PLAN_CACHE_FORMAT

    table = _layer_table(network)
    ids = {id(layer): index for index, layer in enumerate(table)}
    witnesses = []
    for layer, key, array in plan._witnesses:
        if layer.params.get(key) is not array:
            raise PlanCacheError(f"plan {plan.name!r} is stale; not storing")
        witnesses.append([ids[id(layer)], key])
    return {
        "format": PLAN_CACHE_FORMAT,
        "name": plan.name,
        "backend": plan.backend_name,
        "input_shape": [int(dim) for dim in plan.input_shape],
        "output_shape": [int(dim) for dim in plan.output_shape],
        "stats": dataclasses.asdict(plan.stats),
        "capacities": [int(slot.size) for slot in plan._slots],
        "steps": [_step_to_entry(step, ids) for step in plan.steps],
        "witnesses": witnesses,
    }


def plan_from_descriptor(descriptor: Dict[str, Any], network) -> ExecutionPlan:
    """Rebuild an :class:`ExecutionPlan` from a stored descriptor.

    Every reference is re-bound against the live network and validated
    (layer types, output shapes, schedule order, arena slots); anything
    inconsistent raises, and the caller treats it as a miss.  Because the
    cache key covers the params digest, a successful rebind executes
    bitwise-identically to a fresh compile.
    """
    from repro.exec.cache import PLAN_CACHE_FORMAT

    if descriptor.get("format") != PLAN_CACHE_FORMAT:
        raise PlanCacheError("descriptor format mismatch")
    table = _layer_table(network)
    steps = [_step_from_entry(entry, table) for entry in descriptor["steps"]]
    stats = PlanStats(**descriptor["stats"])
    witnesses: List[Tuple[Layer, str, np.ndarray]] = []
    for layer_id, key in descriptor["witnesses"]:
        try:
            layer = table[layer_id]
        except IndexError as exc:
            raise PlanCacheError("witness references unknown layer") from exc
        array = layer.params.get(key)
        if array is None:
            raise PlanCacheError(f"witness param {key!r} missing on {layer.name!r}")
        witnesses.append((layer, key, array))
    return ExecutionPlan.restore(
        descriptor["name"],
        steps,
        descriptor["input_shape"],
        descriptor["output_shape"],
        stats,
        witnesses,
        descriptor["capacities"],
        backend=descriptor.get("backend"),
    )


def load_or_compile_plan(
    network,
    start: int = 0,
    end: Optional[int] = None,
    *,
    fold: bool = True,
    fuse: bool = True,
    backend: Optional[str] = None,
    quantize_bits: Optional[int] = None,
    exit_point: Optional[int] = None,
) -> ExecutionPlan:
    """:func:`compile_plan`, fronted by the cross-process plan cache.

    With no cache configured (``--plan-cache-dir`` / ``REPRO_PLAN_CACHE``
    unset) this *is* ``compile_plan``.  With one, a stored descriptor is
    rehydrated instead of re-running lowering/scheduling/coloring; any
    failure along the cache path — unreadable entry, descriptor that won't
    rebind, full disk on store — degrades to a silent recompile, so the
    cache can never fail a run that would succeed without it.
    """
    from repro.exec import cache as exec_cache

    plan_cache = exec_cache.active_plan_cache()
    if plan_cache is None:
        return compile_plan(
            network, start, end, fold=fold, fuse=fuse,
            backend=backend, quantize_bits=quantize_bits,
            exit_point=exit_point,
        )
    if end is None:
        end = len(network.layers) - 1
    stats = exec_cache.plan_cache_stats()
    key = plan_cache_key(
        network, start, end, fold=fold, fuse=fuse,
        backend=backend, quantize_bits=quantize_bits, exit_point=exit_point,
    )
    descriptor = plan_cache.load(key)
    if descriptor is not None:
        try:
            plan = plan_from_descriptor(descriptor, network)
        except Exception:
            plan_cache.discard(key)
        else:
            stats.hits += 1
            return plan
    started = time.perf_counter()
    plan = compile_plan(
        network, start, end, fold=fold, fuse=fuse,
        backend=backend, quantize_bits=quantize_bits, exit_point=exit_point,
    )
    stats.compile_seconds += time.perf_counter() - started
    stats.misses += 1
    try:
        plan_cache.store(key, plan_to_descriptor(plan, network))
    except Exception:
        pass  # a read-only or full cache dir must not fail the run
    return plan
