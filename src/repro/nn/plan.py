"""Graph-level inference optimizer: compiled execution plans.

``compile_plan`` lowers a built :class:`~repro.nn.network.Network` (or any
spine range of one) into an :class:`ExecutionPlan` — a flat list of fused
steps plus a preallocated arena — via three rewrite families:

* **Constant folding** — ``BatchNorm``/``Scale`` affine transforms are
  folded into the preceding conv's weights (computed in float64, cast to
  float32; within 1e-6 of the reference pass), standalone BN/Scale chains
  collapse to one per-channel affine step, and inference-time ``Dropout``
  (an identity here) is elided outright.
* **Operator fusion** — Conv+bias+ReLU and Dense+ReLU become single steps
  that apply the activation in place on the matmul output.
* **Arena buffer reuse** — steps write into two ping-pong arena slots
  sized once at compile time (a step never writes the slot its input
  lives in), extending the ``out=`` convention of
  :func:`repro.nn.tensor.im2col` to the pool/dense/activation kernels.

Equivalence contract: for networks without BatchNorm/Scale the plan's
arithmetic is *bitwise identical* to the reference layer walk (matmul,
in-place bias add and in-place ``maximum`` produce the same bits as their
out-of-place forms, and max pooling is an exact reduction); with folding
the divergence is bounded by float32 rounding of the folded weights
(``tests/test_nn_plan.py`` asserts 1e-6 across the zoo at every offload
point).  Plans respect offload points: compilation takes a ``(start,
end)`` spine range and no rewrite ever looks past ``end``, so a
``SplitNetwork``'s front and rear plans are independent and fusion never
crosses the split.

``plan.forward_batch(xs)`` runs N inputs through one stacked
im2col/broadcast-matmul per step — the edge server uses it to batch
concurrent partial-inference sessions.

The default-on switch lives here too: :func:`optimization_enabled`
honours :func:`set_optimization` overrides first, then the
``REPRO_NO_OPTIMIZE`` environment variable (the CLI's ``--no-optimize``
sets both, so forked pool workers inherit it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.activation import DropoutLayer, ReLULayer
from repro.nn.layers.base import Layer
from repro.nn.layers.batchnorm import BatchNormLayer, ScaleLayer
from repro.nn.layers.composite import InceptionModule, ResidualBlock
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import FCLayer
from repro.nn.layers.io import InputLayer
from repro.nn.layers.normalization import LRNLayer
from repro.nn.layers.pool import PoolLayer
from repro.nn.tensor import im2col, im2col_batch, max_pool_strided

#: set to any non-empty value to disable plan execution process-wide
#: (the CLI's ``--no-optimize`` exports it so pool workers inherit it)
NO_OPTIMIZE_ENV = "REPRO_NO_OPTIMIZE"

_OPTIMIZE_OVERRIDE: Optional[bool] = None


def optimization_enabled() -> bool:
    """Whether ``Network.forward`` should execute through compiled plans."""
    if _OPTIMIZE_OVERRIDE is not None:
        return _OPTIMIZE_OVERRIDE
    return not os.environ.get(NO_OPTIMIZE_ENV)


def set_optimization(enabled: Optional[bool]) -> None:
    """Force plans on/off process-wide; ``None`` restores the env default."""
    global _OPTIMIZE_OVERRIDE
    _OPTIMIZE_OVERRIDE = enabled


@dataclass
class PlanStats:
    """Compile-time accounting for one plan (sub-plans included)."""

    steps: int = 0
    folded: int = 0  # BatchNorm/Scale layers constant-folded away
    elided: int = 0  # inference-time Dropout layers removed
    fused: int = 0  # ReLU activations fused into conv/fc steps
    fallbacks: int = 0  # steps that call the reference layer forward
    arena_bytes: int = 0  # bytes of preallocated arena slots
    reuse_bytes_per_forward: int = 0  # arena bytes written per forward

    def absorb(self, other: "PlanStats") -> None:
        """Fold a sub-plan's counts into this plan's totals."""
        self.steps += other.steps
        self.folded += other.folded
        self.elided += other.elided
        self.fused += other.fused
        self.fallbacks += other.fallbacks
        self.arena_bytes += other.arena_bytes
        self.reuse_bytes_per_forward += other.reuse_bytes_per_forward


class PlanStep:
    """One compiled operation: reads a value, produces the next one.

    ``arena`` steps receive a preallocated output view (never aliasing
    their input); non-arena steps allocate like the reference path.
    ``layers`` lists ``(spine_index, layer, counted)`` triples covering the
    source layers — ``counted`` is False for layers whose arithmetic was
    folded away, which is what :func:`plan_costs` prices.
    """

    kind = "step"
    arena = False

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        out_shape: Tuple[int, ...],
    ):
        self.name = name
        self.layers = list(layers)
        self.out_shape = tuple(out_shape)
        self.out_elements = 1
        for dim in self.out_shape:
            self.out_elements *= dim
        self._views: Optional[List[np.ndarray]] = None

    @property
    def spine_index(self) -> int:
        return self.layers[0][0]

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, out={self.out_shape})"


class ConvStep(PlanStep):
    """im2col + matmul with pre-folded operands and optional fused ReLU."""

    kind = "conv"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ConvLayer,
        operands: Sequence[Tuple[np.ndarray, np.ndarray]],
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.operands = list(operands)
        self.relu = relu

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        layer = self.layer
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        out2d = out.reshape(filters, positions)
        if layer.groups == 1:
            matrix, bias = self.operands[0]
            buffer = layer._cols_buffer(x.shape[0], out_h, out_w)
            cols = im2col(x, layer.kernel, layer.stride, layer.pad, out=buffer)
            np.matmul(matrix, cols, out=out2d)
            out2d += bias
        else:
            per_in = x.shape[0] // layer.groups
            per_out = filters // layer.groups
            buffer = layer._cols_buffer(per_in, out_h, out_w)
            for group, (matrix, bias) in enumerate(self.operands):
                x_slice = x[group * per_in : (group + 1) * per_in]
                cols = im2col(
                    x_slice, layer.kernel, layer.stride, layer.pad, out=buffer
                )
                target = out2d[group * per_out : (group + 1) * per_out]
                np.matmul(matrix, cols, out=target)
                target += bias
        if self.relu:
            np.maximum(out2d, 0.0, out=out2d)
        return out

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        layer = self.layer
        count = xs.shape[0]
        filters, out_h, out_w = self.out_shape
        positions = out_h * out_w
        if layer.groups == 1:
            matrix, bias = self.operands[0]
            cols = im2col_batch(xs, layer.kernel, layer.stride, layer.pad)
            out = np.matmul(matrix, cols)  # (N, F, P) via broadcast
            out += bias
        else:
            per_in = xs.shape[1] // layer.groups
            per_out = filters // layer.groups
            out = np.empty((count, filters, positions), dtype=np.float32)
            for group, (matrix, bias) in enumerate(self.operands):
                cols = im2col_batch(
                    xs[:, group * per_in : (group + 1) * per_in],
                    layer.kernel, layer.stride, layer.pad,
                )
                target = out[:, group * per_out : (group + 1) * per_out]
                np.matmul(matrix, cols, out=target)
                target += bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out.reshape((count,) + self.out_shape)


class FCStep(PlanStep):
    """Dense matmul with optional fused ReLU."""

    kind = "fc"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: FCLayer,
        relu: bool,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.relu = relu

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        result = self.layer.forward(x, out=out)
        if self.relu:
            np.maximum(result, 0.0, out=result)
        return result

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        flat = xs.reshape(xs.shape[0], -1)
        out = flat @ self.layer.params["weight"].T
        out += self.layer.params["bias"]
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class PoolStep(PlanStep):
    """Pooling into an arena buffer (strided in-place maxima for max)."""

    kind = "pool"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: PoolLayer,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        return self.layer.forward(x, out=out)

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        layer = self.layer
        count = xs.shape[0]
        if layer.mode == "max":
            folded = xs.reshape((-1,) + xs.shape[2:])
            pooled = max_pool_strided(folded, layer.kernel, layer.stride, layer.pad)
            return pooled.reshape((count,) + self.out_shape)
        return np.stack([layer.forward(xs[index]) for index in range(count)])


class ReLUStep(PlanStep):
    """Standalone ReLU (not adjacent to a fusable conv/fc) into the arena."""

    kind = "relu"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ReLULayer,
    ):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        return self.layer.forward(x, out=out)

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        return np.maximum(xs, 0.0)


class AffineStep(PlanStep):
    """A standalone BatchNorm/Scale chain folded to ``y = x*s + t``."""

    kind = "affine"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        out_shape: Tuple[int, ...],
        scale: np.ndarray,
        shift: Optional[np.ndarray],
    ):
        super().__init__(name, layers, out_shape)
        self.scale = scale[:, None, None]
        self.shift = shift[:, None, None] if shift is not None else None

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        np.multiply(x, self.scale, out=out)
        if self.shift is not None:
            out += self.shift
        return out

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        out = xs * self.scale[None]
        if self.shift is not None:
            out += self.shift[None]
        return out


class FallbackStep(PlanStep):
    """Reference execution for kinds without a rewritten kernel (LRN,
    softmax, average pooling's summation order, …) — calls the layer's own
    ``forward``, so the step is bitwise-trivially equivalent."""

    def __init__(self, name: str, layers: Sequence[Tuple[int, Layer, bool]],
                 layer: Layer):
        super().__init__(name, layers, layer.out_shape)
        self.layer = layer
        self.kind = layer.kind

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        return self.layer.forward(x)

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        return np.stack([self.layer.forward(xs[index])
                         for index in range(xs.shape[0])])


class LRNStep(FallbackStep):
    """LRN: reference forward per sample, vectorized across the batch.

    The batched math is the per-sample prefix-sum formulation applied
    along axis 1, so every sample sees the identical accumulation order —
    bitwise equal to N reference forwards.
    """

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        layer = self.layer
        channels = xs.shape[1]
        half = layer.local_size // 2
        squared = xs.astype(np.float64) ** 2
        prefix = np.concatenate(
            [
                np.zeros((xs.shape[0], 1) + xs.shape[2:]),
                np.cumsum(squared, axis=1),
            ],
            axis=1,
        )
        lo = np.clip(np.arange(channels) - half, 0, channels)
        hi = np.clip(np.arange(channels) + half + 1, 0, channels)
        window_sums = prefix[:, hi] - prefix[:, lo]
        scale = (
            layer.k + (layer.alpha / layer.local_size) * window_sums
        ) ** layer.beta
        return (xs / scale).astype(np.float32)


class InceptionStep(PlanStep):
    """Branch sub-plans concatenated channel-wise into the arena."""

    kind = "inception"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: InceptionModule,
        branch_plans: Sequence["ExecutionPlan"],
    ):
        super().__init__(name, layers, layer.out_shape)
        self.branch_plans = list(branch_plans)

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        outputs = [plan._execute(x) for plan in self.branch_plans]
        np.concatenate(outputs, axis=0, out=out)
        return out

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        outputs = [plan._execute_batch(xs) for plan in self.branch_plans]
        return np.concatenate(outputs, axis=1)


class ResidualStep(PlanStep):
    """Body/shortcut sub-plans joined by an elementwise add into the arena."""

    kind = "residual"
    arena = True

    def __init__(
        self,
        name: str,
        layers: Sequence[Tuple[int, Layer, bool]],
        layer: ResidualBlock,
        body_plan: "ExecutionPlan",
        shortcut_plan: Optional["ExecutionPlan"],
    ):
        super().__init__(name, layers, layer.out_shape)
        self.body_plan = body_plan
        self.shortcut_plan = shortcut_plan

    def run(self, x: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        body = self.body_plan._execute(x)
        shortcut = (
            self.shortcut_plan._execute(x) if self.shortcut_plan is not None else x
        )
        np.add(body, shortcut, out=out)
        return out

    def run_batch(self, xs: np.ndarray) -> np.ndarray:
        body = self.body_plan._execute_batch(xs)
        shortcut = (
            self.shortcut_plan._execute_batch(xs)
            if self.shortcut_plan is not None
            else xs
        )
        return body + shortcut


class ExecutionPlan:
    """A compiled spine range: fused steps + a two-slot ping-pong arena.

    Arena discipline: an arena step always writes the slot its input does
    *not* live in, so no step ever reads a buffer already overwritten
    (asserted by the aliasing test via :meth:`forward_traced`).  The final
    value is copied out of the arena before being returned, so callers own
    their result like on the reference path.
    """

    def __init__(
        self,
        name: str,
        steps: Sequence[PlanStep],
        input_shape: Tuple[int, ...],
        output_shape: Tuple[int, ...],
        stats: PlanStats,
        witnesses: Sequence[Tuple[Layer, str, np.ndarray]],
    ):
        self.name = name
        self.steps = list(steps)
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(output_shape)
        self.stats = stats
        self._witnesses = list(witnesses)
        self.forwards = 0
        self.batch_forwards = 0
        self.batch_sizes: List[int] = []
        self.arena_bytes_reused = 0
        self._finalize_arena()

    # -- arena ----------------------------------------------------------------
    def _finalize_arena(self) -> None:
        arena_steps = [step for step in self.steps if step.arena]
        slot_elements = max(
            (step.out_elements for step in arena_steps), default=0
        )
        self._slots = [
            np.empty(slot_elements, dtype=np.float32) for _ in range(2)
        ] if slot_elements else []
        for step in arena_steps:
            step._views = [
                slot[: step.out_elements].reshape(step.out_shape)
                for slot in self._slots
            ]
        own_arena_bytes = 2 * slot_elements * 4
        own_reuse = sum(step.out_elements * 4 for step in arena_steps)
        self.stats.arena_bytes += own_arena_bytes
        self.stats.reuse_bytes_per_forward += own_reuse

    # -- validity --------------------------------------------------------------
    def is_valid(self) -> bool:
        """True while every captured parameter array is still installed.

        Loaders replace ``layer.params[...]`` wholesale; an identity
        mismatch means the folded/captured operands are stale and the plan
        must be recompiled (mirrors the conv operand cache's rule).
        """
        return all(
            layer.params.get(key) is array
            for layer, key, array in self._witnesses
        )

    # -- execution -------------------------------------------------------------
    def _check_input(self, value: np.ndarray) -> None:
        if tuple(value.shape) != self.input_shape:
            raise ValueError(
                f"plan {self.name!r} expects input shape {self.input_shape}, "
                f"got {tuple(value.shape)}"
            )

    def _execute(self, value: np.ndarray) -> np.ndarray:
        """Run the steps; the result may live in this plan's arena."""
        slot = None
        for step in self.steps:
            if step.arena:
                target = 1 - slot if slot is not None else 0
                value = step.run(value, step._views[target])
                slot = target
            else:
                value = step.run(value, None)
                slot = None
        return value

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One sample through the compiled steps; caller owns the result."""
        value = np.asarray(x, dtype=np.float32)
        self._check_input(value)
        result = self._execute(value)
        self.forwards += 1
        self.arena_bytes_reused += self.stats.reuse_bytes_per_forward
        if self._value_in_arena(result):
            result = result.copy()
        return result

    def forward_traced(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, List[Dict[str, object]]]:
        """Like :meth:`forward` but records, per step, whether the step's
        output buffer aliases its input — the arena-safety invariant the
        tests assert (it must always be False)."""
        value = np.asarray(x, dtype=np.float32)
        self._check_input(value)
        slot = None
        trace: List[Dict[str, object]] = []
        for step in self.steps:
            previous = value
            if step.arena:
                target = 1 - slot if slot is not None else 0
                out = step._views[target]
                aliases = np.shares_memory(previous, out)
                value = step.run(previous, out)
                slot = target
            else:
                value = step.run(previous, None)
                aliases = False
                slot = None
            trace.append(
                {
                    "step": step.name,
                    "kind": step.kind,
                    "arena": step.arena,
                    "output_aliases_input": aliases,
                }
            )
        if self._value_in_arena(value):
            value = value.copy()
        return value, trace

    def _value_in_arena(self, value: np.ndarray) -> bool:
        return any(np.shares_memory(value, slot) for slot in self._slots)

    def forward_batch(self, xs) -> np.ndarray:
        """Run N inputs through one stacked kernel per step.

        ``xs`` is a sequence of per-sample arrays (or an ``(N, ...)``
        array); returns the stacked ``(N, ...)`` outputs.  Matches N calls
        of :meth:`forward` within float32 GEMM reassociation (1e-6).
        """
        value = np.asarray(xs, dtype=np.float32)
        if value.ndim == len(self.input_shape):
            value = value[None]
        if tuple(value.shape[1:]) != self.input_shape:
            raise ValueError(
                f"plan {self.name!r} expects batch shape (N,) + "
                f"{self.input_shape}, got {tuple(value.shape)}"
            )
        result = self._execute_batch(value)
        self.batch_forwards += 1
        self.batch_sizes.append(int(value.shape[0]))
        return result

    def _execute_batch(self, value: np.ndarray) -> np.ndarray:
        for step in self.steps:
            value = step.run_batch(value)
        return value

    # -- reporting -------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        stats = self.stats
        return {
            "plan": self.name,
            "steps": stats.steps,
            "layers_folded": stats.folded,
            "layers_elided": stats.elided,
            "steps_fused": stats.fused,
            "fallback_steps": stats.fallbacks,
            "arena_bytes": stats.arena_bytes,
            "arena_bytes_reused_per_forward": stats.reuse_bytes_per_forward,
            "forwards": self.forwards,
            "batch_forwards": self.batch_forwards,
        }

    def describe_text(self) -> str:
        """Human-readable one-plan summary (the CLI's ``repro metrics``)."""
        stats = self.stats
        return (
            f"plan {self.name}: {stats.steps} steps "
            f"({stats.fused} fused, {stats.folded} folded, "
            f"{stats.elided} elided, {stats.fallbacks} fallback), "
            f"arena {stats.arena_bytes / 1024:.0f} KiB "
            f"(reuses {stats.reuse_bytes_per_forward / 1024:.0f} KiB/forward)"
        )

    def record_metrics(self, registry) -> None:
        """Export compile/runtime counters into a metrics registry.

        Called explicitly (``repro metrics``) rather than auto-announced:
        plans compile lazily once per process, so announcing at compile
        time would make merged telemetry depend on worker topology.
        """
        labels = {"plan": self.name}
        stats = self.stats
        registry.counter(
            "plan_layers_folded_total",
            help="BatchNorm/Scale layers constant-folded into other steps",
            **labels,
        ).inc(stats.folded)
        registry.counter(
            "plan_layers_elided_total",
            help="inference-time identity layers removed from the plan",
            **labels,
        ).inc(stats.elided)
        registry.counter(
            "plan_steps_fused_total",
            help="activations fused into the preceding conv/fc step",
            **labels,
        ).inc(stats.fused)
        registry.gauge(
            "plan_arena_bytes",
            help="bytes of preallocated arena buffers", **labels,
        ).set(stats.arena_bytes)
        registry.counter(
            "plan_forwards_total",
            help="single-sample forwards executed through the plan", **labels,
        ).inc(self.forwards)
        registry.counter(
            "plan_arena_bytes_reused_total",
            help="bytes written into reused arena buffers instead of fresh "
            "allocations",
            **labels,
        ).inc(self.arena_bytes_reused)
        batch_histogram = registry.histogram(
            "plan_batch_size",
            help="batch sizes seen by forward_batch", **labels,
        )
        for size in self.batch_sizes:
            batch_histogram.observe(size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionPlan({self.name!r}, {len(self.steps)} steps)"


# -- compilation ----------------------------------------------------------------

def _affine_chain(
    chain: Sequence[Layer], channels: int
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Collapse BatchNorm/Scale layers to per-channel ``(scale, shift)``.

    Accumulated in float64 so the single folded affine stays within
    float32 rounding of applying each layer separately.
    """
    scale = np.ones(channels, dtype=np.float64)
    shift = np.zeros(channels, dtype=np.float64)
    has_shift = False
    for layer in chain:
        if isinstance(layer, BatchNormLayer):
            inv_std = 1.0 / np.sqrt(
                layer.params["variance"].astype(np.float64) + layer.eps
            )
            mean = layer.params["mean"].astype(np.float64)
            scale = scale * inv_std
            shift = (shift - mean) * inv_std
            has_shift = True
        elif isinstance(layer, ScaleLayer):
            gamma = layer.params["gamma"].astype(np.float64)
            scale = scale * gamma
            shift = shift * gamma
            if "beta" in layer.params:
                shift = shift + layer.params["beta"].astype(np.float64)
                has_shift = True
        else:  # pragma: no cover - guarded by the caller
            raise TypeError(f"cannot fold layer kind {layer.kind!r}")
    return scale, shift, has_shift


def _witnesses_for(layer: Layer) -> List[Tuple[Layer, str, np.ndarray]]:
    return [(layer, key, array) for key, array in layer.params.items()]


def _folded_conv_operands(
    layer: ConvLayer, chain: Sequence[Layer]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-group matmul operands with the affine chain folded in."""
    scale, shift, _ = _affine_chain(chain, layer.num_filters)
    weight = layer.params["weight"].astype(np.float64)
    bias = layer.params["bias"].astype(np.float64)
    folded_weight = (weight * scale[:, None, None, None]).astype(np.float32)
    folded_bias = (bias * scale + shift).astype(np.float32)
    per_out = layer.num_filters // layer.groups
    return [
        (
            np.ascontiguousarray(
                folded_weight[group * per_out : (group + 1) * per_out].reshape(
                    per_out, -1
                )
            ),
            np.ascontiguousarray(
                folded_bias[group * per_out : (group + 1) * per_out][:, None]
            ),
        )
        for group in range(layer.groups)
    ]


def _compile_sequence(
    indexed: Sequence[Tuple[int, Layer]],
    *,
    fold: bool,
    fuse: bool,
    stats: PlanStats,
    witnesses: List[Tuple[Layer, str, np.ndarray]],
    prefix: str = "",
) -> List[PlanStep]:
    """Lower an ordered layer sequence to steps (shared by spine ranges and
    composite branches).  Rewrites only ever look ahead *within* the given
    sequence, which is how fusion can never cross a split boundary."""
    steps: List[PlanStep] = []
    position = 0
    while position < len(indexed):
        index, layer = indexed[position]
        covered: List[Tuple[int, Layer, bool]] = [(index, layer, True)]
        if isinstance(layer, InputLayer) or isinstance(layer, DropoutLayer):
            # Identity at inference time: elided outright (the plan's input
            # shape check replaces InputLayer's validation).
            if isinstance(layer, DropoutLayer):
                stats.elided += 1
            position += 1
            continue
        if isinstance(layer, ConvLayer):
            chain: List[Layer] = []
            cursor = position + 1
            while (
                fold
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], (BatchNormLayer, ScaleLayer))
            ):
                chain.append(indexed[cursor][1])
                covered.append((indexed[cursor][0], indexed[cursor][1], False))
                cursor += 1
            relu = False
            if (
                fuse
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], ReLULayer)
            ):
                relu = True
                covered.append((indexed[cursor][0], indexed[cursor][1], True))
                cursor += 1
            if chain:
                operands = _folded_conv_operands(layer, chain)
                for folded_layer in chain:
                    witnesses.extend(_witnesses_for(folded_layer))
            else:
                operands = layer._group_operands()
            witnesses.append((layer, "weight", layer.params["weight"]))
            witnesses.append((layer, "bias", layer.params["bias"]))
            name = prefix + layer.name
            steps.append(ConvStep(name, covered, layer, operands, relu))
            stats.folded += len(chain)
            stats.fused += 1 if relu else 0
            position = cursor
        elif isinstance(layer, FCLayer):
            relu = False
            cursor = position + 1
            if (
                fuse
                and cursor < len(indexed)
                and isinstance(indexed[cursor][1], ReLULayer)
            ):
                relu = True
                covered.append((indexed[cursor][0], indexed[cursor][1], True))
                cursor += 1
            steps.append(FCStep(prefix + layer.name, covered, layer, relu))
            stats.fused += 1 if relu else 0
            position = cursor
        elif fold and isinstance(layer, (BatchNormLayer, ScaleLayer)):
            chain = [layer]
            cursor = position + 1
            while cursor < len(indexed) and isinstance(
                indexed[cursor][1], (BatchNormLayer, ScaleLayer)
            ):
                chain.append(indexed[cursor][1])
                covered.append((indexed[cursor][0], indexed[cursor][1], False))
                cursor += 1
            channels = layer.input_shape[0]
            scale, shift, has_shift = _affine_chain(chain, channels)
            for chained in chain:
                witnesses.extend(_witnesses_for(chained))
            steps.append(
                AffineStep(
                    prefix + layer.name,
                    covered,
                    layer.out_shape,
                    scale.astype(np.float32),
                    shift.astype(np.float32) if has_shift else None,
                )
            )
            stats.folded += len(chain) - 1
            position = cursor
        elif isinstance(layer, PoolLayer):
            steps.append(PoolStep(prefix + layer.name, covered, layer))
            position += 1
        elif isinstance(layer, ReLULayer):
            steps.append(ReLUStep(prefix + layer.name, covered, layer))
            position += 1
        elif isinstance(layer, InceptionModule):
            branch_plans = []
            for branch_index, branch in enumerate(layer.branches):
                branch_plans.append(
                    _compile_subplan(
                        f"{prefix}{layer.name}/b{branch_index}",
                        [(index, inner) for inner in branch],
                        layer.input_shape,
                        branch[-1].out_shape,
                        fold=fold,
                        fuse=fuse,
                        stats=stats,
                        witnesses=witnesses,
                    )
                )
            steps.append(
                InceptionStep(prefix + layer.name, covered, layer, branch_plans)
            )
            position += 1
        elif isinstance(layer, ResidualBlock):
            body_plan = _compile_subplan(
                f"{prefix}{layer.name}/body",
                [(index, inner) for inner in layer.body],
                layer.input_shape,
                layer.body[-1].out_shape,
                fold=fold,
                fuse=fuse,
                stats=stats,
                witnesses=witnesses,
            )
            shortcut_plan = None
            if layer.shortcut:
                shortcut_plan = _compile_subplan(
                    f"{prefix}{layer.name}/shortcut",
                    [(index, inner) for inner in layer.shortcut],
                    layer.input_shape,
                    layer.shortcut[-1].out_shape,
                    fold=fold,
                    fuse=fuse,
                    stats=stats,
                    witnesses=witnesses,
                )
            steps.append(
                ResidualStep(
                    prefix + layer.name, covered, layer, body_plan, shortcut_plan
                )
            )
            position += 1
        else:
            step_type = (
                LRNStep if isinstance(layer, LRNLayer) else FallbackStep
            )
            steps.append(step_type(prefix + layer.name, covered, layer))
            stats.fallbacks += 1
            position += 1
    stats.steps += len(steps)
    return steps


def _compile_subplan(
    name: str,
    indexed: Sequence[Tuple[int, Layer]],
    input_shape: Tuple[int, ...],
    output_shape: Tuple[int, ...],
    *,
    fold: bool,
    fuse: bool,
    stats: PlanStats,
    witnesses: List[Tuple[Layer, str, np.ndarray]],
) -> ExecutionPlan:
    """A composite branch as its own plan with its own (small) arena.

    Branch arenas are disjoint from the parent's slots, so branches can
    never clobber the composite's shared input tensor.  Stats accumulate
    into the parent's ``stats``; the sub-plan itself carries an empty one.
    """
    sub_stats = PlanStats()
    steps = _compile_sequence(
        indexed, fold=fold, fuse=fuse, stats=sub_stats, witnesses=witnesses,
        prefix=f"{name}/",
    )
    plan = ExecutionPlan(
        name, steps, input_shape, output_shape, sub_stats, witnesses=[]
    )
    stats.absorb(sub_stats)
    return plan


def compile_plan(
    network,
    start: int = 0,
    end: Optional[int] = None,
    *,
    fold: bool = True,
    fuse: bool = True,
) -> ExecutionPlan:
    """Compile spine layers ``start..end`` (inclusive) of a built network.

    The range defaults to the whole spine.  ``fold=False`` keeps
    BatchNorm/Scale as reference fallbacks (bitwise execution even for BN
    models); ``fuse=False`` disables ReLU fusion.  No rewrite considers
    layers outside the range, so front/rear plans of a split are compiled
    independently and fusion never crosses the offload point.
    """
    if not network.built:
        raise RuntimeError(
            f"network {network.name!r} must be built before compiling a plan"
        )
    last = len(network.layers) - 1
    if end is None:
        end = last
    if not (0 <= start <= end <= last):
        raise IndexError(
            f"invalid plan range [{start}, {end}] for network "
            f"{network.name!r} with {len(network.layers)} layers"
        )
    stats = PlanStats()
    witnesses: List[Tuple[Layer, str, np.ndarray]] = []
    indexed = [
        (index, network.layers[index]) for index in range(start, end + 1)
    ]
    steps = _compile_sequence(
        indexed, fold=fold, fuse=fuse, stats=stats, witnesses=witnesses
    )
    input_shape = (
        network.input_shape if start == 0
        else network.layers[start - 1].out_shape
    )
    output_shape = network.layers[end].out_shape
    return ExecutionPlan(
        f"{network.name}[{start}:{end}]",
        steps,
        input_shape,
        output_shape,
        stats,
        witnesses,
    )
