"""Caffe prototxt support: parse and emit deploy network definitions.

CaffeJS "loads a pre-trained NN model (trained by ... Caffe) onto the web
app" — concretely, a ``deploy.prototxt`` architecture file plus a binary
parameter blob.  This module implements the architecture half for real:

* :func:`parse_text` — a generic protobuf *text format* reader (nested
  messages, repeated fields, strings/numbers/booleans/enums, comments);
* :func:`network_from_prototxt` — interprets a deploy definition (input
  declaration, layer stack with ``bottom``/``top`` blob wiring, including
  Caffe's in-place idiom and GoogLeNet-style fork/Concat branches) into a
  built :class:`~repro.nn.network.Network`;
* :func:`network_to_prototxt` — emits a deploy definition from one of our
  networks, using the same conventions (in-place ReLU/Dropout, explicit
  Concat joins), so definitions round-trip.

Supported layer types: Input, Convolution (with ``group``), Pooling
(MAX/AVE), InnerProduct, ReLU, LRN, Dropout, Softmax, Concat.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InceptionModule,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.network import Network
from repro.sim import SeededRng


class PrototxtError(ValueError):
    """Raised on malformed prototxt or unsupported constructs."""


# ---------------------------------------------------------------------------
# Generic protobuf text format
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*) |
        (?P<string>"(?:[^"\\]|\\.)*") |
        (?P<punct>[{}:]) |
        (?P<atom>[^\s{}:"\#]+)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position : position + 20]
            raise PrototxtError(f"cannot tokenize near {remainder!r}")
        position = match.end()
        if match.group("comment") is not None:
            continue
        for group in ("string", "punct", "atom"):
            value = match.group(group)
            if value is not None:
                tokens.append(value)
                break
    return tokens


def _atom_value(token: str) -> Any:
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token  # an enum like MAX / AVE


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.position = 0

    def _peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PrototxtError("unexpected end of input")
        self.position += 1
        return token

    def parse_message(self, top_level: bool = False) -> Dict[str, List[Any]]:
        """Parse fields until '}' (or end of input at top level)."""
        fields: Dict[str, List[Any]] = {}
        while True:
            token = self._peek()
            if token is None:
                if top_level:
                    return fields
                raise PrototxtError("missing closing '}'")
            if token == "}":
                if top_level:
                    raise PrototxtError("unmatched '}'")
                self._next()
                return fields
            key = self._next()
            if key in ("{", ":"):
                raise PrototxtError(f"expected a field name, got {key!r}")
            separator = self._peek()
            if separator == ":":
                self._next()
                after = self._peek()
                if after == "{":
                    self._next()
                    value: Any = self.parse_message()
                else:
                    value = _atom_value(self._next())
            elif separator == "{":
                self._next()
                value = self.parse_message()
            else:
                raise PrototxtError(f"field {key!r} has no value")
            fields.setdefault(key, []).append(value)


def parse_text(text: str) -> Dict[str, List[Any]]:
    """Parse protobuf text format into {field: [values...]}."""
    return _Parser(_tokenize(text)).parse_message(top_level=True)


def _one(message: Dict[str, List[Any]], key: str, default: Any = None) -> Any:
    values = message.get(key)
    if not values:
        return default
    return values[0]


# ---------------------------------------------------------------------------
# prototxt -> Network
# ---------------------------------------------------------------------------

@dataclass
class _LayerDef:
    name: str
    type: str
    bottoms: List[str]
    tops: List[str]
    message: Dict[str, List[Any]]
    index: int
    consumed: bool = False

    @property
    def in_place(self) -> bool:
        return bool(self.bottoms) and self.bottoms == self.tops


def _layer_defs(root: Dict[str, List[Any]]) -> List[_LayerDef]:
    defs = []
    for index, message in enumerate(root.get("layer", [])):
        defs.append(
            _LayerDef(
                name=_one(message, "name", f"layer{index}"),
                type=_one(message, "type", ""),
                bottoms=list(message.get("bottom", [])),
                tops=list(message.get("top", [])),
                message=message,
                index=index,
            )
        )
    return defs


def _input_declaration(root: Dict[str, List[Any]], defs: List[_LayerDef]):
    """Returns (input blob name, (C, H, W))."""
    # Style 1: top-level input / input_dim (classic deploy files).
    if "input" in root:
        blob = root["input"][0]
        dims = [int(d) for d in root.get("input_dim", [])]
        if len(dims) == 4:
            return blob, tuple(dims[1:])
        shapes = root.get("input_shape", [])
        if shapes:
            dim = [int(d) for d in shapes[0].get("dim", [])]
            if len(dim) == 4:
                return blob, tuple(dim[1:])
        raise PrototxtError("input declared without 4 input dims")
    # Style 2: an explicit Input layer.
    for definition in defs:
        if definition.type == "Input":
            definition.consumed = True
            param = _one(definition.message, "input_param", {})
            shape = _one(param, "shape", {})
            dim = [int(d) for d in shape.get("dim", [])]
            if len(dim) != 4:
                raise PrototxtError("Input layer needs shape { dim: ... } x4")
            return definition.tops[0], tuple(dim[1:])
    raise PrototxtError("no input declaration found")


def _convert_simple(definition: _LayerDef) -> Layer:
    message = definition.message
    kind = definition.type
    if kind == "Convolution":
        param = _one(message, "convolution_param", {})
        return ConvLayer(
            definition.name,
            num_filters=int(_one(param, "num_output", 0)),
            kernel=int(_one(param, "kernel_size", 1)),
            stride=int(_one(param, "stride", 1)),
            pad=int(_one(param, "pad", 0)),
            groups=int(_one(param, "group", 1)),
        )
    if kind == "Pooling":
        param = _one(message, "pooling_param", {})
        mode = "avg" if _one(param, "pool", "MAX") == "AVE" else "max"
        if _one(param, "global_pooling", False):
            # Resolved at build time by kernel = input spatial size; Caffe
            # does the same.  Represent as a sentinel handled in _GlobalPool.
            return _GlobalPoolPlaceholder(definition.name, mode)
        return PoolLayer(
            definition.name,
            kernel=int(_one(param, "kernel_size", 1)),
            stride=int(_one(param, "stride", 1)),
            pad=int(_one(param, "pad", 0)),
            mode=mode,
        )
    if kind == "InnerProduct":
        param = _one(message, "inner_product_param", {})
        return FCLayer(definition.name, out_features=int(_one(param, "num_output", 0)))
    if kind == "ReLU":
        return ReLULayer(definition.name)
    if kind == "Dropout":
        param = _one(message, "dropout_param", {})
        return DropoutLayer(definition.name, rate=float(_one(param, "dropout_ratio", 0.5)))
    if kind == "LRN":
        param = _one(message, "lrn_param", {})
        return LRNLayer(
            definition.name,
            local_size=int(_one(param, "local_size", 5)),
            alpha=float(_one(param, "alpha", 1e-4)),
            beta=float(_one(param, "beta", 0.75)),
        )
    if kind == "Softmax":
        return SoftmaxLayer(definition.name)
    if kind == "BatchNorm":
        from repro.nn.layers import BatchNormLayer

        param = _one(message, "batch_norm_param", {})
        return BatchNormLayer(definition.name, eps=float(_one(param, "eps", 1e-5)))
    if kind == "Scale":
        from repro.nn.layers import ScaleLayer

        param = _one(message, "scale_param", {})
        return ScaleLayer(definition.name, bias=bool(_one(param, "bias_term", True)))
    raise PrototxtError(f"unsupported layer type {kind!r} ({definition.name!r})")


class _GlobalPoolPlaceholder(PoolLayer):
    """Global pooling: kernel bound to the input's spatial size at build."""

    def __init__(self, name: str, mode: str):
        super().__init__(name, kernel=1, stride=1, mode=mode)
        self._global = True

    def build(self, input_shape, rng):
        self.kernel = int(input_shape[1])
        self.stride = 1
        return super().build(input_shape, rng)


#: layer types that join forked branches
_JOIN_TYPES = ("Concat", "Eltwise")


class _GraphConverter:
    """Blob-graph walker: Caffe layer list -> our spine representation."""

    def __init__(self, defs: List[_LayerDef]):
        self.defs = defs

    def _consumers(self, blob: str) -> List[_LayerDef]:
        return [
            definition
            for definition in self.defs
            if not definition.consumed and blob in definition.bottoms
        ]

    def spine_from(self, blob: str) -> List[Layer]:
        spine: List[Layer] = []
        while True:
            consumers = self._consumers(blob)
            if not consumers:
                return spine
            first = consumers[0]
            if first.in_place:
                # Caffe in-place idiom: execute in file order on the blob.
                first.consumed = True
                spine.append(_convert_simple(first))
                continue
            if len(consumers) == 1:
                definition = consumers[0]
                definition.consumed = True
                if definition.type in _JOIN_TYPES:
                    raise PrototxtError(
                        f"{definition.type} {definition.name!r} with a "
                        "single live input"
                    )
                spine.append(_convert_simple(definition))
                blob = definition.tops[0]
                continue
            # Fork: build each branch until the shared join layer.
            module, blob = self._fork(blob, consumers)
            spine.append(module)

    def _fork(self, blob: str, heads: List[_LayerDef]) -> Tuple[Layer, str]:
        """Walk a fork's branches to their join (Concat or Eltwise)."""
        branches: List[List[Layer]] = []
        branch_tops: List[str] = []
        join: Optional[_LayerDef] = None

        def note_join(definition: _LayerDef) -> None:
            nonlocal join
            if join is None:
                join = definition
            elif join is not definition:
                raise PrototxtError(
                    f"branches join different layers: {join.name!r} vs "
                    f"{definition.name!r}"
                )

        for head in heads:
            if head.type in _JOIN_TYPES:
                # The join consumes the fork blob directly: an identity
                # branch (a ResNet shortcut).
                note_join(head)
                branches.append([])
                branch_tops.append(blob)
                continue
            branch: List[Layer] = []
            current = blob
            definition: Optional[_LayerDef] = head
            while definition is not None and definition.type not in _JOIN_TYPES:
                definition.consumed = True
                branch.append(_convert_simple(definition))
                if not definition.in_place:
                    current = definition.tops[0]
                next_consumers = [
                    d for d in self._consumers(current) if d is not definition
                ]
                if not next_consumers:
                    raise PrototxtError(
                        f"branch from {head.name!r} dead-ends at blob {current!r}"
                    )
                definition = next_consumers[0]
            assert definition is not None
            note_join(definition)
            branches.append(branch)
            branch_tops.append(current)
        assert join is not None
        # Order branches by the join's bottom order, not discovery order.
        order = {top: position for position, top in enumerate(join.bottoms)}
        paired = sorted(
            zip(branch_tops, branches), key=lambda pair: order.get(pair[0], 99)
        )
        branches = [branch for _, branch in paired]
        join.consumed = True
        module_name = (
            join.name.replace("/output", "").replace("/concat", "").replace("/sum", "")
        )
        if join.type == "Concat":
            return InceptionModule(module_name, branches), join.tops[0]
        # Eltwise: the longer branch is the body, the other the shortcut
        # (identity shortcuts are empty).
        if len(branches) != 2:
            raise PrototxtError(
                f"Eltwise {join.name!r} must join exactly 2 branches, "
                f"got {len(branches)}"
            )
        body, shortcut = branches
        if len(shortcut) > len(body):
            body, shortcut = shortcut, body
        if not body:
            raise PrototxtError(f"Eltwise {join.name!r} joins two identity branches")
        from repro.nn.layers import ResidualBlock

        return ResidualBlock(module_name, body=body, shortcut=shortcut), join.tops[0]


def network_from_prototxt(text: str, seed: int = 0) -> Network:
    """Parse a deploy prototxt and build the network (random parameters)."""
    root = parse_text(text)
    defs = _layer_defs(root)
    input_blob, input_shape = _input_declaration(root, defs)
    name = _one(root, "name", "prototxt-net")
    layers: List[Layer] = [InputLayer(tuple(input_shape), name=input_blob)]
    layers.extend(_GraphConverter(defs).spine_from(input_blob))
    unused = [d.name for d in defs if not d.consumed]
    if unused:
        raise PrototxtError(f"unreachable layers in prototxt: {unused}")
    network = Network(str(name), layers)
    network.build(SeededRng(seed, f"prototxt/{name}"))
    return network


# ---------------------------------------------------------------------------
# Network -> prototxt
# ---------------------------------------------------------------------------

def _emit_param_block(layer: Layer) -> str:
    if isinstance(layer, ConvLayer):
        lines = [
            "  convolution_param {",
            f"    num_output: {layer.num_filters}",
            f"    kernel_size: {layer.kernel}",
        ]
        if layer.stride != 1:
            lines.append(f"    stride: {layer.stride}")
        if layer.pad:
            lines.append(f"    pad: {layer.pad}")
        if layer.groups != 1:
            lines.append(f"    group: {layer.groups}")
        lines.append("  }")
        return "\n".join(lines)
    if isinstance(layer, PoolLayer):
        pool = "AVE" if layer.mode == "avg" else "MAX"
        lines = [
            "  pooling_param {",
            f"    pool: {pool}",
            f"    kernel_size: {layer.kernel}",
        ]
        if layer.stride != 1:
            lines.append(f"    stride: {layer.stride}")
        if layer.pad:
            lines.append(f"    pad: {layer.pad}")
        lines.append("  }")
        return "\n".join(lines)
    if isinstance(layer, FCLayer):
        return (
            "  inner_product_param {\n"
            f"    num_output: {layer.out_features}\n"
            "  }"
        )
    if isinstance(layer, DropoutLayer):
        return f"  dropout_param {{\n    dropout_ratio: {layer.rate}\n  }}"
    if isinstance(layer, LRNLayer):
        return (
            "  lrn_param {\n"
            f"    local_size: {layer.local_size}\n"
            f"    alpha: {layer.alpha}\n"
            f"    beta: {layer.beta}\n"
            "  }"
        )
    from repro.nn.layers import BatchNormLayer, ScaleLayer

    if isinstance(layer, BatchNormLayer):
        return f"  batch_norm_param {{\n    eps: {layer.eps}\n  }}"
    if isinstance(layer, ScaleLayer):
        bias = "true" if layer.bias else "false"
        return f"  scale_param {{\n    bias_term: {bias}\n  }}"
    return ""


_TYPE_NAMES = {
    "conv": "Convolution",
    "pool": "Pooling",
    "fc": "InnerProduct",
    "relu": "ReLU",
    "dropout": "Dropout",
    "lrn": "LRN",
    "softmax": "Softmax",
    "batchnorm": "BatchNorm",
    "scale": "Scale",
}

#: layer kinds emitted with Caffe's in-place idiom (top == bottom)
_IN_PLACE_KINDS = {"relu", "dropout", "batchnorm", "scale"}


def _emit_layer(layer: Layer, bottoms: List[str], top: str) -> str:
    type_name = _TYPE_NAMES.get(layer.kind)
    if type_name is None:
        raise PrototxtError(f"cannot emit layer kind {layer.kind!r}")
    lines = ["layer {", f'  name: "{layer.name}"', f'  type: "{type_name}"']
    lines.extend(f'  bottom: "{bottom}"' for bottom in bottoms)
    lines.append(f'  top: "{top}"')
    params = _emit_param_block(layer)
    if params:
        lines.append(params)
    lines.append("}")
    return "\n".join(lines)


def network_to_prototxt(network: Network) -> str:
    """Emit a deploy prototxt for a built network."""
    if not network.built:
        raise PrototxtError("network must be built before emission")
    first = network.layers[0]
    if not isinstance(first, InputLayer):
        raise PrototxtError("network must start with an InputLayer")
    channels, height, width = first.declared_shape
    blocks = [
        f'name: "{network.name}"',
        f'input: "{first.name}"',
        f"input_dim: 1\ninput_dim: {channels}\ninput_dim: {height}\n"
        f"input_dim: {width}",
    ]
    blob = first.name

    def emit_chain(layers: List[Layer], blob: str) -> str:
        for layer in layers:
            if layer.kind in _IN_PLACE_KINDS:
                blocks.append(_emit_layer(layer, [blob], blob))
            else:
                blocks.append(_emit_layer(layer, [blob], layer.name))
                blob = layer.name
        return blob

    from repro.nn.layers import ResidualBlock

    for layer in network.layers[1:]:
        if isinstance(layer, InceptionModule):
            branch_tops = [emit_chain(branch, blob) for branch in layer.branches]
            top = f"{layer.name}/output"
            lines = ["layer {", f'  name: "{layer.name}"', '  type: "Concat"']
            lines.extend(f'  bottom: "{bottom}"' for bottom in branch_tops)
            lines.append(f'  top: "{top}"')
            lines.append("}")
            blocks.append("\n".join(lines))
            blob = top
        elif isinstance(layer, ResidualBlock):
            body_top = emit_chain(layer.body, blob)
            shortcut_top = emit_chain(layer.shortcut, blob) if layer.shortcut else blob
            top = f"{layer.name}/sum"
            lines = [
                "layer {",
                f'  name: "{layer.name}"',
                '  type: "Eltwise"',
                f'  bottom: "{body_top}"',
                f'  bottom: "{shortcut_top}"',
                f'  top: "{top}"',
                "  eltwise_param {",
                "    operation: SUM",
                "  }",
                "}",
            ]
            blocks.append("\n".join(lines))
            blob = top
        else:
            blob = emit_chain([layer], blob)
    return "\n".join(blocks) + "\n"
