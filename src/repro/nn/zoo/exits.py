"""Multi-exit variants of the zoo models (Edgent/BranchyNet-style).

``smallnet_exits`` adds two tiny classifier heads to the smallnet trunk —
one after each pooling stage — so tests can sweep every (split, exit) pair
in microseconds.  ``googlenet_exits`` attaches GoogLeNet's two *real*
auxiliary classifiers (after inception_4a and inception_4d, Szegedy et al.
2015 §5: 5x5/3 average pool, 1x1 conv of 128 filters, fc-1024, dropout
0.7, 1000-way fc + softmax); the original trains with them and drops them
at deploy, an early-exit deployment runs them when the deadline demands.

Every exit carries a modeled top-1 accuracy; the trunk's final classifier
carries the full-network accuracy (``Network.final_accuracy``).  The
numbers are modeled, not measured — randomly initialized parameters have
no real accuracy — and follow the published ordering: each later exit is
strictly more accurate, the full network most accurate of all, with the
aux heads landing a few points below the main classifier.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    ExitHead,
    FCLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.model import Model
from repro.nn.network import Network
from repro.nn.zoo.googlenet import INCEPTION_CONFIGS, _inception
from repro.sim import SeededRng

#: modeled top-1 accuracies (exit name -> accuracy), tests assert ordering
SMALLNET_EXIT_ACCURACY = {"exit1": 0.62, "exit2": 0.71, "final": 0.78}
GOOGLENET_EXIT_ACCURACY = {"loss1": 0.622, "loss2": 0.641, "final": 0.687}


def smallnet_exits_network(num_classes: int = 10) -> Network:
    """Smallnet with an early exit after each pooling stage."""
    layers: List[Layer] = [
        InputLayer((3, 32, 32)),
        ConvLayer("conv1", 8, kernel=5, stride=1, pad=2),
        ReLULayer("relu1"),
        PoolLayer("pool1", kernel=2, stride=2),
        ExitHead(
            "exit1",
            head=[
                FCLayer("exit1_fc", num_classes),
                SoftmaxLayer("exit1_prob"),
            ],
            accuracy=SMALLNET_EXIT_ACCURACY["exit1"],
        ),
        LRNLayer("norm1", local_size=3),
        ConvLayer("conv2", 16, kernel=3, pad=1),
        ReLULayer("relu2"),
        PoolLayer("pool2", kernel=2, stride=2),
        ExitHead(
            "exit2",
            head=[
                FCLayer("exit2_fc", num_classes),
                SoftmaxLayer("exit2_prob"),
            ],
            accuracy=SMALLNET_EXIT_ACCURACY["exit2"],
        ),
        FCLayer("fc3", 32),
        ReLULayer("relu3"),
        DropoutLayer("drop3", rate=0.5),
        FCLayer("fc4", num_classes),
        SoftmaxLayer("prob"),
    ]
    network = Network("smallnet_exits", layers)
    network.final_accuracy = SMALLNET_EXIT_ACCURACY["final"]
    return network


def smallnet_exits(seed: int = 0, num_classes: int = 10) -> Model:
    network = smallnet_exits_network(num_classes)
    network.build(SeededRng(seed, "zoo/smallnet_exits"))
    return Model("smallnet_exits", network)


def _googlenet_aux_head(name: str, num_classes: int) -> List[Layer]:
    """One real GoogLeNet auxiliary classifier (Szegedy et al. 2015 §5)."""
    return [
        PoolLayer(f"{name}_ave_pool", kernel=5, stride=3, mode="avg"),
        ConvLayer(f"{name}_conv", 128, kernel=1),
        ReLULayer(f"{name}_relu_conv"),
        FCLayer(f"{name}_fc", 1024),
        ReLULayer(f"{name}_relu_fc"),
        DropoutLayer(f"{name}_drop_fc", rate=0.7),
        FCLayer(f"{name}_classifier", num_classes),
        SoftmaxLayer(f"{name}_prob"),
    ]


def googlenet_exits_network() -> Network:
    """GoogLeNet with its two auxiliary classifiers as early exits."""
    layers: List[Layer] = [
        InputLayer((3, 224, 224)),
        ConvLayer("conv1_7x7_s2", 64, kernel=7, stride=2, pad=3),
        ReLULayer("relu_conv1"),
        PoolLayer("pool1_3x3_s2", kernel=3, stride=2),
        LRNLayer("pool1_norm1", local_size=5),
        ConvLayer("conv2_3x3_reduce", 64, kernel=1),
        ReLULayer("relu_conv2_reduce"),
        ConvLayer("conv2_3x3", 192, kernel=3, pad=1),
        ReLULayer("relu_conv2"),
        LRNLayer("conv2_norm2", local_size=5),
        PoolLayer("pool2_3x3_s2", kernel=3, stride=2),
        _inception("3a", INCEPTION_CONFIGS["3a"]),
        _inception("3b", INCEPTION_CONFIGS["3b"]),
        PoolLayer("pool3_3x3_s2", kernel=3, stride=2),
        _inception("4a", INCEPTION_CONFIGS["4a"]),
        ExitHead(
            "loss1",
            head=_googlenet_aux_head("loss1", 1000),
            accuracy=GOOGLENET_EXIT_ACCURACY["loss1"],
        ),
        _inception("4b", INCEPTION_CONFIGS["4b"]),
        _inception("4c", INCEPTION_CONFIGS["4c"]),
        _inception("4d", INCEPTION_CONFIGS["4d"]),
        ExitHead(
            "loss2",
            head=_googlenet_aux_head("loss2", 1000),
            accuracy=GOOGLENET_EXIT_ACCURACY["loss2"],
        ),
        _inception("4e", INCEPTION_CONFIGS["4e"]),
        PoolLayer("pool4_3x3_s2", kernel=3, stride=2),
        _inception("5a", INCEPTION_CONFIGS["5a"]),
        _inception("5b", INCEPTION_CONFIGS["5b"]),
        PoolLayer("pool5_7x7_s1", kernel=7, stride=1, mode="avg"),
        DropoutLayer("pool5_drop", rate=0.4),
        FCLayer("loss3_classifier", 1000),
        SoftmaxLayer("prob"),
    ]
    network = Network("googlenet_exits", layers)
    network.final_accuracy = GOOGLENET_EXIT_ACCURACY["final"]
    return network


def googlenet_exits(seed: int = 0) -> Model:
    network = googlenet_exits_network()
    network.build(SeededRng(seed, "zoo/googlenet_exits"))
    return Model("googlenet_exits", network)
