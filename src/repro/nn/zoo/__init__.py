"""The benchmark model zoo.

Three image-recognition models, faithful to the architectures the paper
benchmarks with CaffeJS:

* :func:`googlenet` — GoogLeNet / Inception-v1 (Szegedy et al., 2015),
  1000-way ImageNet classifier, ~7.0 M parameters → ~27 MiB model file.
* :func:`agenet` — the Levi & Hassner (2015) age classifier (8 classes),
  ~11.4 M parameters → ~44 MiB.
* :func:`gendernet` — the same backbone with a 2-way gender head, ~44 MiB.

Parameters are randomly initialized (He/Xavier): trained weights do not
affect any quantity the paper measures (times and sizes depend only on the
architecture), and shipping real weights is impossible offline anyway.

:func:`smallnet` / :func:`tinynet` are small synthetic CNNs used by tests
and examples where full-scale models would be wastefully slow.

:func:`smallnet_exits` / :func:`googlenet_exits` are multi-exit variants
(auxiliary classifier heads with modeled top-1 accuracies) for the joint
(split, exit) deadline optimizer; see ``docs/EXITS.md``.
"""

from typing import Callable, Dict

from repro.nn.model import Model
from repro.nn.zoo.googlenet import googlenet
from repro.nn.zoo.agenet import agenet, gendernet
from repro.nn.zoo.alexnet import alexnet
from repro.nn.zoo.exits import googlenet_exits, smallnet_exits
from repro.nn.zoo.resnetlike import resnet_mini
from repro.nn.zoo.smallnet import smallnet, tinynet

BUILDERS: Dict[str, Callable[..., Model]] = {
    "googlenet": googlenet,
    "googlenet_exits": googlenet_exits,
    "agenet": agenet,
    "gendernet": gendernet,
    "alexnet": alexnet,
    "resnet-mini": resnet_mini,
    "smallnet": smallnet,
    "smallnet_exits": smallnet_exits,
    "tinynet": tinynet,
}

#: the paper's three benchmark apps, in presentation order
PAPER_MODELS = ("googlenet", "agenet", "gendernet")

#: the multi-exit variants, in sweep order
EXIT_MODELS = ("smallnet_exits", "googlenet_exits")


def build_model(name: str, seed: int = 0) -> Model:
    """Build a zoo model by name.

    The freshly built model is fingerprinted here, once, at load time:
    the params digest (sha256 over every weight array) is the expensive
    part of every plan-cache key, and priming the memo now keeps it out
    of the request path — a warm ``load_or_compile_plan`` must not hash
    27 MB of GoogLeNet weights again just to look up its own key.
    """
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(BUILDERS)}"
        ) from None
    model = builder(seed=seed)
    model.fingerprint()
    return model


__all__ = [
    "BUILDERS",
    "EXIT_MODELS",
    "PAPER_MODELS",
    "agenet",
    "alexnet",
    "build_model",
    "gendernet",
    "googlenet",
    "googlenet_exits",
    "resnet_mini",
    "smallnet",
    "smallnet_exits",
    "tinynet",
]
