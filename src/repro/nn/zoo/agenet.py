"""AgeNet and GenderNet — Levi & Hassner (CVPR-W 2015).

The paper's other two benchmark apps use the age/gender CNN of Levi &
Hassner: a compact AlexNet-style network (3 conv blocks, 2 hidden fc layers
of 512) over 227x227 input.  AgeNet classifies 8 age brackets, GenderNet 2
genders; they share the backbone, so both model files weigh ~44 MiB — the
number that makes offloading *before* the pre-send ACK slower than local
execution in the paper's Fig. 6.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.model import Model
from repro.nn.network import Network
from repro.sim import SeededRng


def _levi_hassner_layers(num_classes: int) -> List[Layer]:
    return [
        InputLayer((3, 227, 227)),
        ConvLayer("conv1", 96, kernel=7, stride=4),
        ReLULayer("relu1"),
        PoolLayer("pool1", kernel=3, stride=2),
        LRNLayer("norm1", local_size=5),
        ConvLayer("conv2", 256, kernel=5, pad=2),
        ReLULayer("relu2"),
        PoolLayer("pool2", kernel=3, stride=2),
        LRNLayer("norm2", local_size=5),
        ConvLayer("conv3", 384, kernel=3, pad=1),
        ReLULayer("relu3"),
        PoolLayer("pool3", kernel=3, stride=2),
        FCLayer("fc6", 512),
        ReLULayer("relu6"),
        DropoutLayer("drop6", rate=0.5),
        FCLayer("fc7", 512),
        ReLULayer("relu7"),
        DropoutLayer("drop7", rate=0.5),
        FCLayer("fc8", num_classes),
        SoftmaxLayer("prob"),
    ]


def agenet_network() -> Network:
    """The 8-class age network spine (unbuilt)."""
    return Network("agenet", _levi_hassner_layers(num_classes=8))


def gendernet_network() -> Network:
    """The 2-class gender network spine (unbuilt)."""
    return Network("gendernet", _levi_hassner_layers(num_classes=2))


def agenet(seed: int = 0) -> Model:
    """Build AgeNet with randomly initialized parameters."""
    network = agenet_network()
    network.build(SeededRng(seed, "zoo/agenet"))
    return Model("agenet", network)


def gendernet(seed: int = 0) -> Model:
    """Build GenderNet with randomly initialized parameters."""
    network = gendernet_network()
    network.build(SeededRng(seed, "zoo/gendernet"))
    return Model("gendernet", network)
