"""Small synthetic CNNs for tests and examples.

``smallnet`` keeps the structural features that matter to the offloading
system — a conv (feature growth), a pool (feature shrink), LRN between
them, fc + softmax at the end — at a size where numeric forward passes take
microseconds.  ``tinynet`` is the minimum viable spine for property tests.
"""

from __future__ import annotations

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.model import Model
from repro.nn.network import Network
from repro.sim import SeededRng


def smallnet_network(num_classes: int = 10) -> Network:
    return Network(
        "smallnet",
        [
            InputLayer((3, 32, 32)),
            ConvLayer("conv1", 8, kernel=5, stride=1, pad=2),
            ReLULayer("relu1"),
            PoolLayer("pool1", kernel=2, stride=2),
            LRNLayer("norm1", local_size=3),
            ConvLayer("conv2", 16, kernel=3, pad=1),
            ReLULayer("relu2"),
            PoolLayer("pool2", kernel=2, stride=2),
            FCLayer("fc3", 32),
            ReLULayer("relu3"),
            DropoutLayer("drop3", rate=0.5),
            FCLayer("fc4", num_classes),
            SoftmaxLayer("prob"),
        ],
    )


def smallnet(seed: int = 0, num_classes: int = 10) -> Model:
    network = smallnet_network(num_classes)
    network.build(SeededRng(seed, "zoo/smallnet"))
    return Model("smallnet", network)


def tinynet_network() -> Network:
    return Network(
        "tinynet",
        [
            InputLayer((1, 8, 8)),
            ConvLayer("conv1", 4, kernel=3, pad=1),
            ReLULayer("relu1"),
            PoolLayer("pool1", kernel=2, stride=2),
            FCLayer("fc2", 4),
            SoftmaxLayer("prob"),
        ],
    )


def tinynet(seed: int = 0) -> Model:
    network = tinynet_network()
    network.build(SeededRng(seed, "zoo/tinynet"))
    return Model("tinynet", network)
