"""GoogLeNet (Inception v1), Szegedy et al. 2015 — the paper's Fig. 1 model.

The deploy network (no auxiliary classifier heads, matching the inference
model CaffeJS loads): 224x224x3 input, conv/pool/LRN stem, nine inception
modules, global average pool, dropout, 1000-way fc + softmax.

Reference checkpoints on the spine (asserted by tests, shown in the paper's
Fig. 1): (64,112,112) after conv1 — visualized as (56,56,64) after pool1 —
(192,28,28) after pool2, 256→480 channels through inception 3a/3b,
(832,7,7) after pool4, (1024,1,1) after global pooling, 1000 scores out.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InceptionModule,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.model import Model
from repro.nn.network import Network
from repro.sim import SeededRng

#: (1x1, 3x3_reduce, 3x3, 5x5_reduce, 5x5, pool_proj) per inception module
INCEPTION_CONFIGS = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(name: str, config: tuple) -> InceptionModule:
    c1, c3r, c3, c5r, c5, proj = config
    return InceptionModule(
        f"inception_{name}",
        branches=[
            [
                ConvLayer(f"{name}_1x1", c1, kernel=1),
                ReLULayer(f"{name}_relu_1x1"),
            ],
            [
                ConvLayer(f"{name}_3x3_reduce", c3r, kernel=1),
                ReLULayer(f"{name}_relu_3x3_reduce"),
                ConvLayer(f"{name}_3x3", c3, kernel=3, pad=1),
                ReLULayer(f"{name}_relu_3x3"),
            ],
            [
                ConvLayer(f"{name}_5x5_reduce", c5r, kernel=1),
                ReLULayer(f"{name}_relu_5x5_reduce"),
                ConvLayer(f"{name}_5x5", c5, kernel=5, pad=2),
                ReLULayer(f"{name}_relu_5x5"),
            ],
            [
                PoolLayer(f"{name}_pool", kernel=3, stride=1, pad=1, mode="max"),
                ConvLayer(f"{name}_pool_proj", proj, kernel=1),
                ReLULayer(f"{name}_relu_pool_proj"),
            ],
        ],
    )


def googlenet_network() -> Network:
    """The (unbuilt) GoogLeNet spine."""
    layers: List[Layer] = [
        InputLayer((3, 224, 224)),
        ConvLayer("conv1_7x7_s2", 64, kernel=7, stride=2, pad=3),
        ReLULayer("relu_conv1"),
        PoolLayer("pool1_3x3_s2", kernel=3, stride=2),
        LRNLayer("pool1_norm1", local_size=5),
        ConvLayer("conv2_3x3_reduce", 64, kernel=1),
        ReLULayer("relu_conv2_reduce"),
        ConvLayer("conv2_3x3", 192, kernel=3, pad=1),
        ReLULayer("relu_conv2"),
        LRNLayer("conv2_norm2", local_size=5),
        PoolLayer("pool2_3x3_s2", kernel=3, stride=2),
        _inception("3a", INCEPTION_CONFIGS["3a"]),
        _inception("3b", INCEPTION_CONFIGS["3b"]),
        PoolLayer("pool3_3x3_s2", kernel=3, stride=2),
        _inception("4a", INCEPTION_CONFIGS["4a"]),
        _inception("4b", INCEPTION_CONFIGS["4b"]),
        _inception("4c", INCEPTION_CONFIGS["4c"]),
        _inception("4d", INCEPTION_CONFIGS["4d"]),
        _inception("4e", INCEPTION_CONFIGS["4e"]),
        PoolLayer("pool4_3x3_s2", kernel=3, stride=2),
        _inception("5a", INCEPTION_CONFIGS["5a"]),
        _inception("5b", INCEPTION_CONFIGS["5b"]),
        PoolLayer("pool5_7x7_s1", kernel=7, stride=1, mode="avg"),
        DropoutLayer("pool5_drop", rate=0.4),
        FCLayer("loss3_classifier", 1000),
        SoftmaxLayer("prob"),
    ]
    return Network("googlenet", layers)


def googlenet(seed: int = 0) -> Model:
    """Build GoogLeNet with randomly initialized parameters."""
    network = googlenet_network()
    network.build(SeededRng(seed, "zoo/googlenet"))
    return Model("googlenet", network)
