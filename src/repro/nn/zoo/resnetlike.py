"""A CIFAR-style residual network ("resnet-mini").

Not one of the paper's benchmark apps — it post-dates the architectures
CaffeJS shipped — but the natural compatibility target for the framework:
split-DNN offloading must handle elementwise-add joins, identity and
projection shortcuts, and Eltwise prototxt graphs.  Three stages of two
residual blocks over 32x32 input, ~0.27 M parameters.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    BatchNormLayer,
    ConvLayer,
    FCLayer,
    InputLayer,
    PoolLayer,
    ReLULayer,
    ResidualBlock,
    ScaleLayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.model import Model
from repro.nn.network import Network
from repro.sim import SeededRng


def _block(
    name: str, channels: int, stride: int = 1, batch_norm: bool = False
) -> ResidualBlock:
    def bn(tag: str) -> List[Layer]:
        if not batch_norm:
            return []
        return [BatchNormLayer(f"{name}_bn{tag}"), ScaleLayer(f"{name}_scale{tag}")]

    body: List[Layer] = [
        ConvLayer(f"{name}_conv1", channels, kernel=3, stride=stride, pad=1),
        *bn("1"),
        ReLULayer(f"{name}_relu1"),
        ConvLayer(f"{name}_conv2", channels, kernel=3, pad=1),
        *bn("2"),
    ]
    shortcut: List[Layer] = []
    if stride != 1:
        # Downsampling block: a 1x1 projection shortcut matches shapes.
        shortcut = [ConvLayer(f"{name}_proj", channels, kernel=1, stride=stride)]
    return ResidualBlock(name, body=body, shortcut=shortcut)


def resnet_mini_network(
    num_classes: int = 10, batch_norm: bool = False
) -> Network:
    """The (unbuilt) residual spine."""
    layers: List[Layer] = [
        InputLayer((3, 32, 32)),
        ConvLayer("conv1", 16, kernel=3, pad=1),
        ReLULayer("relu1"),
        _block("res2a", 16, batch_norm=batch_norm),
        ReLULayer("res2a_relu"),
        _block("res2b", 16, batch_norm=batch_norm),
        ReLULayer("res2b_relu"),
        _block("res3a", 32, stride=2, batch_norm=batch_norm),
        ReLULayer("res3a_relu"),
        _block("res3b", 32, batch_norm=batch_norm),
        ReLULayer("res3b_relu"),
        _block("res4a", 64, stride=2, batch_norm=batch_norm),
        ReLULayer("res4a_relu"),
        _block("res4b", 64, batch_norm=batch_norm),
        ReLULayer("res4b_relu"),
        PoolLayer("global_pool", kernel=8, stride=1, mode="avg"),
        FCLayer("fc", num_classes),
        SoftmaxLayer("prob"),
    ]
    name = "resnet-mini-bn" if batch_norm else "resnet-mini"
    return Network(name, layers)


def resnet_mini(seed: int = 0, num_classes: int = 10) -> Model:
    """Build the residual model with randomly initialized parameters."""
    network = resnet_mini_network(num_classes)
    network.build(SeededRng(seed, "zoo/resnet-mini"))
    return Model("resnet-mini", network)


def resnet_mini_bn(seed: int = 0, num_classes: int = 10) -> Model:
    """The batch-normalized variant (Caffe BatchNorm + Scale pairs)."""
    network = resnet_mini_network(num_classes, batch_norm=True)
    network.build(SeededRng(seed, "zoo/resnet-mini-bn"))
    return Model("resnet-mini-bn", network)
