"""AlexNet (bvlc_alexnet deploy variant) — a model-size stress test.

Not one of the paper's three benchmark apps, but the natural fourth: the
Levi–Hassner nets are scaled-down AlexNets, and full AlexNet's ~61 M
parameters (~233 MB model file) probe the opposite end of the pre-sending
trade-off — uploading the model costs minutes at 30 Mbps while local
inference costs seconds, so the before-ACK decision must flip hard toward
local execution.  Uses AlexNet's grouped convolutions (conv2/4/5, g=2).
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.model import Model
from repro.nn.network import Network
from repro.sim import SeededRng


def alexnet_network(num_classes: int = 1000) -> Network:
    """The bvlc_alexnet deploy spine (unbuilt)."""
    layers: List[Layer] = [
        InputLayer((3, 227, 227)),
        ConvLayer("conv1", 96, kernel=11, stride=4),
        ReLULayer("relu1"),
        LRNLayer("norm1", local_size=5),
        PoolLayer("pool1", kernel=3, stride=2),
        ConvLayer("conv2", 256, kernel=5, pad=2, groups=2),
        ReLULayer("relu2"),
        LRNLayer("norm2", local_size=5),
        PoolLayer("pool2", kernel=3, stride=2),
        ConvLayer("conv3", 384, kernel=3, pad=1),
        ReLULayer("relu3"),
        ConvLayer("conv4", 384, kernel=3, pad=1, groups=2),
        ReLULayer("relu4"),
        ConvLayer("conv5", 256, kernel=3, pad=1, groups=2),
        ReLULayer("relu5"),
        PoolLayer("pool5", kernel=3, stride=2),
        FCLayer("fc6", 4096),
        ReLULayer("relu6"),
        DropoutLayer("drop6", rate=0.5),
        FCLayer("fc7", 4096),
        ReLULayer("relu7"),
        DropoutLayer("drop7", rate=0.5),
        FCLayer("fc8", num_classes),
        SoftmaxLayer("prob"),
    ]
    return Network("alexnet", layers)


def alexnet(seed: int = 0) -> Model:
    """Build AlexNet with randomly initialized parameters (~233 MB)."""
    network = alexnet_network()
    network.build(SeededRng(seed, "zoo/alexnet"))
    return Model("alexnet", network)
