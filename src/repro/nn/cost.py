"""Analytic cost reports: FLOPs, parameters and feature sizes per layer.

These reports are what the device model executes against (virtual time) and
what the Neurosurgeon-style predictor is trained on.  Composite inception
modules are expanded into their inner layers so per-*kind* throughputs apply,
while every expanded entry keeps its spine index so partition logic can
aggregate back to offload-point granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.nn.layers.composite import InceptionModule
from repro.nn.network import Network
from repro.nn.tensor import (
    binary_serialized_bytes,
    element_count,
    text_serialized_bytes,
)


@dataclass(frozen=True)
class LayerCost:
    """Cost of one concrete layer execution."""

    name: str
    kind: str
    flops: float
    params: int
    output_shape: Tuple[int, ...]
    spine_index: int

    @property
    def output_elements(self) -> int:
        return element_count(self.output_shape) if len(self.output_shape) == 3 else (
            int(self.output_shape[0]) if self.output_shape else 0
        )


@dataclass(frozen=True)
class SpinePointCost:
    """Aggregate cost of one spine position (one offload point)."""

    index: int
    name: str
    kind: str
    flops: float
    params: int
    output_shape: Tuple[int, ...]

    @property
    def output_elements(self) -> int:
        count = 1
        for dim in self.output_shape:
            count *= dim
        return count

    @property
    def feature_text_bytes(self) -> int:
        """Snapshot-text size of the feature tensor at this point."""
        return text_serialized_bytes(self.output_elements)

    @property
    def feature_binary_bytes(self) -> int:
        return binary_serialized_bytes(self.output_elements)

    def feature_quantized_bytes(self, bits: int = 8) -> int:
        """Wire size if the feature tensor crosses the split quantized."""
        from repro.nn.quantize import packed_feature_bytes

        return packed_feature_bytes(self.output_elements, bits)


def network_costs(net: Network) -> List[LayerCost]:
    """Expanded per-layer costs (inception/residual composites flattened)."""
    from repro.nn.layers.composite import ResidualBlock

    if not net.built:
        raise RuntimeError(f"network {net.name!r} must be built before costing")
    costs: List[LayerCost] = []
    for index, layer in enumerate(net.layers):
        if isinstance(layer, (InceptionModule, ResidualBlock)):
            for inner in layer.inner_layers():
                costs.append(
                    LayerCost(
                        name=f"{layer.name}/{inner.name}",
                        kind=inner.kind,
                        flops=inner.count_flops(),
                        params=inner.param_count,
                        output_shape=tuple(inner.out_shape),
                        spine_index=index,
                    )
                )
            # The join: concat copies / eltwise adds one op per element.
            join = "concat" if isinstance(layer, InceptionModule) else "eltwise"
            costs.append(
                LayerCost(
                    name=f"{layer.name}/{join}",
                    kind=join,
                    flops=float(layer.output_elements),
                    params=0,
                    output_shape=tuple(layer.out_shape),
                    spine_index=index,
                )
            )
        else:
            costs.append(
                LayerCost(
                    name=layer.name,
                    kind=layer.kind,
                    flops=layer.count_flops(),
                    params=layer.param_count,
                    output_shape=tuple(layer.out_shape),
                    spine_index=index,
                )
            )
    return costs


def spine_costs(net: Network) -> List[SpinePointCost]:
    """Per-spine-position aggregates (offload-point granularity)."""
    expanded = network_costs(net)
    points: List[SpinePointCost] = []
    for index, layer in enumerate(net.layers):
        flops = sum(cost.flops for cost in expanded if cost.spine_index == index)
        params = sum(cost.params for cost in expanded if cost.spine_index == index)
        points.append(
            SpinePointCost(
                index=index,
                name=layer.name,
                kind=layer.kind,
                flops=flops,
                params=params,
                output_shape=tuple(layer.out_shape),
            )
        )
    return points


def plan_costs(
    net: Network, start: int = 0, end: int = None, *, exit_point: int = None
) -> List[LayerCost]:
    """Per-*step* costs of the compiled plan for a spine range.

    One entry per executed plan step: folded BatchNorm/Scale layers and
    elided Dropout layers disappear (their arithmetic is constant-folded
    into the step's weights), and a fused Conv+ReLU is one entry — so a
    predictor's per-layer dispatch overhead is charged per step actually
    dispatched.  Parameters still count in full (folding changes weight
    *values*, not how many bytes ship).  Composite layers appear as their
    inlined branch steps plus a join step, all at the composite's spine
    index, matching offload-point granularity; the join itself carries
    only the copy/add cost (one op per output element) and no parameters,
    since the branch steps already price the inner layers.

    ``exit_point`` prices the early-exit plan instead: trunk steps up to
    the exit plus the head classifier's steps, nothing past the attach
    point (see :func:`repro.nn.plan.compile_plan`).
    """
    plan = net.plan_for(start, end, exit_point=exit_point)
    costs: List[LayerCost] = []
    for step in plan.steps:
        if step.kind in ("concat", "eltwise"):
            flops = float(step.out_elements)
            params = 0
        else:
            flops = sum(
                layer.count_flops()
                for _, layer, counted in step.layers
                if counted
            )
            params = sum(layer.param_count for _, layer, _ in step.layers)
        costs.append(
            LayerCost(
                name=step.name,
                kind=step.kind,
                flops=flops,
                params=params,
                output_shape=tuple(step.out_shape),
                spine_index=step.spine_index,
            )
        )
    return costs


def costs_for_range(net: Network, start: int, end: int) -> List[LayerCost]:
    """Expanded costs for spine layers ``start..end`` inclusive."""
    return [
        cost for cost in network_costs(net) if start <= cost.spine_index <= end
    ]


def exit_head_costs(net: Network, exit_index: int) -> List[LayerCost]:
    """Expanded costs of the classifier head at spine index ``exit_index``.

    The trunk entry for an exit layer is flops-free (the head only runs
    when the exit is taken), so deadline pricing adds these on top of the
    trunk costs for the exit actually chosen.  Every entry carries the
    exit's spine index: the head executes wherever the trunk stops.
    """
    from repro.nn.layers.exits import ExitHead

    layer = net.layers[exit_index]
    if not isinstance(layer, ExitHead):
        raise ValueError(
            f"layer {exit_index} of {net.name!r} is {layer.kind!r}, "
            "not an exit head"
        )
    return [
        LayerCost(
            name=f"{layer.name}/{inner.name}",
            kind=inner.kind,
            flops=inner.count_flops(),
            params=inner.param_count,
            output_shape=tuple(inner.out_shape),
            spine_index=exit_index,
        )
        for inner in layer.head
    ]


def total_flops(net: Network) -> float:
    """Total forward FLOPs of a built network."""
    return sum(cost.flops for cost in network_costs(net))


def total_params(net: Network) -> int:
    return net.param_count
