"""The network: an ordered spine of layers with front/rear splitting.

The benchmark CNNs are sequential at the granularity the paper offloads at:
a *spine* of layers (some of which are composite inception modules).  The
network supports

* full forward execution (``forward``),
* execution of an index range (``forward_range``) — the mechanism behind
  ``inference_front()`` / ``inference_rear()`` in the paper's Fig. 5,
* splitting into two networks at an offload point (``split``), and
* enumeration of named offload points matching Fig. 8's X axis
  (``input``, ``1st_conv``, ``1st_pool``, ``2nd_conv``, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.base import Layer, Shape
from repro.nn.layers.io import InputLayer
from repro.sim import SeededRng

_ORDINALS = (
    "1st", "2nd", "3rd", "4th", "5th", "6th", "7th", "8th", "9th",
    "10th", "11th", "12th",
)


def _ordinal(index: int) -> str:
    if index < len(_ORDINALS):
        return _ORDINALS[index]
    return f"{index + 1}th"


@dataclass(frozen=True)
class OffloadPoint:
    """A candidate split: client executes spine[0..index], server the rest."""

    index: int
    label: str
    layer_name: str
    layer_kind: str


@dataclass(frozen=True)
class ExitPoint:
    """A candidate exit: stop at spine ``index`` with modeled ``accuracy``.

    For an early exit, ``index`` is the spine position of the
    :class:`~repro.nn.layers.exits.ExitHead` whose classifier runs instead
    of the remaining trunk; the *final* exit (``is_final``) is the trunk's
    own classifier at the last spine index.  Every network has at least the
    final exit, so exit-oblivious callers degrade gracefully.
    """

    index: int
    name: str
    accuracy: float
    is_final: bool = False


class Network:
    """An ordered spine of layers, built against a concrete input shape."""

    def __init__(self, name: str, layers: Sequence[Layer]):
        if not layers:
            raise ValueError(f"network {name!r} needs at least one layer")
        self.name = name
        self.layers: List[Layer] = list(layers)
        self.input_shape: Optional[Shape] = None
        self._built = False
        #: modeled top-1 accuracy of the full network (None: unmodeled);
        #: zoo builders of multi-exit variants set it so the joint
        #: (split, exit) optimizer can rank the final exit too
        self.final_accuracy: Optional[float] = None
        #: compiled execution plans keyed by (start, end) spine range
        self._plans: dict = {}

    # -- building -------------------------------------------------------------
    def build(
        self, rng: Optional[SeededRng] = None, input_shape: Optional[Shape] = None
    ) -> "Network":
        """Bind shapes and allocate parameters along the spine."""
        rng = rng or SeededRng(0, f"net/{self.name}")
        if input_shape is None:
            first = self.layers[0]
            if not isinstance(first, InputLayer):
                raise ValueError(
                    f"network {self.name!r} has no InputLayer; "
                    "pass input_shape explicitly"
                )
            input_shape = first.declared_shape
        shape = tuple(input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape, rng.child(layer.name))
        self._built = True
        return self

    @property
    def built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"network {self.name!r} used before build()")

    @property
    def output_shape(self) -> Shape:
        self._require_built()
        return self.layers[-1].out_shape

    # -- execution -------------------------------------------------------------
    def forward(
        self, x: np.ndarray, optimize: Optional[bool] = None
    ) -> np.ndarray:
        """Full forward pass for one sample.

        ``optimize`` selects the compiled-plan path (fold/fuse/arena; see
        :mod:`repro.nn.plan`); the default defers to the process-wide
        switch, which is on unless ``--no-optimize``/``REPRO_NO_OPTIMIZE``
        disabled it.  Both paths produce equivalent outputs.
        """
        return self.forward_range(x, 0, len(self.layers) - 1, optimize=optimize)

    def forward_range(
        self,
        x: np.ndarray,
        start: int,
        end: int,
        optimize: Optional[bool] = None,
    ) -> np.ndarray:
        """Run layers ``start..end`` inclusive."""
        self._require_built()
        self._check_range(start, end)
        if optimize is None:
            from repro.nn import plan as plan_module

            optimize = plan_module.optimization_enabled()
        if optimize:
            return self.plan_for(start, end).forward(x)
        value = np.asarray(x, dtype=np.float32)
        for layer in self.layers[start : end + 1]:
            value = layer.forward(value)
        return value

    def forward_batch(
        self, xs, optimize: Optional[bool] = None
    ) -> np.ndarray:
        """Forward N samples; returns the stacked ``(N, ...)`` outputs.

        The optimized path runs one stacked kernel per plan step (a single
        im2col/matmul per conv for the whole batch); the reference path
        loops :meth:`forward` per sample.
        """
        self._require_built()
        if optimize is None:
            from repro.nn import plan as plan_module

            optimize = plan_module.optimization_enabled()
        if optimize:
            return self.plan_for(0, len(self.layers) - 1).forward_batch(xs)
        return np.stack([self.forward(x, optimize=False) for x in xs])

    def plan_for(
        self,
        start: int = 0,
        end: Optional[int] = None,
        quantize_bits: Optional[int] = None,
        exit_point: Optional[int] = None,
    ):
        """The compiled :class:`~repro.nn.plan.ExecutionPlan` for a range.

        Plans are cached per (start, end, backend, quantize_bits) and
        recompiled automatically when any captured parameter array has been
        replaced (the same identity rule the conv operand cache uses) —
        the backend key means switching ``--backend`` mid-process never
        serves a plan bound to the other backend.  With a plan cache
        configured (``--plan-cache-dir`` / ``REPRO_PLAN_CACHE``) an
        in-memory miss consults the on-disk cache before compiling, so
        pool workers reuse plans compiled by any earlier process.
        """
        from repro.nn.backend import active_backend_name
        from repro.nn.plan import load_or_compile_plan

        self._require_built()
        if end is None:
            end = len(self.layers) - 1
        key = (start, end, active_backend_name(), quantize_bits, exit_point)
        plan = self._plans.get(key)
        if plan is None or not plan.is_valid():
            plan = load_or_compile_plan(
                self, start, end, quantize_bits=quantize_bits,
                exit_point=exit_point,
            )
            self._plans[key] = plan
        return plan

    def forward_with_activations(self, x: np.ndarray) -> List[np.ndarray]:
        """Forward pass returning the output of every spine layer."""
        self._require_built()
        value = np.asarray(x, dtype=np.float32)
        activations = []
        for layer in self.layers:
            value = layer.forward(value)
            activations.append(value)
        return activations

    def _check_range(self, start: int, end: int) -> None:
        if not (0 <= start <= end < len(self.layers)):
            raise IndexError(
                f"invalid layer range [{start}, {end}] for network "
                f"{self.name!r} with {len(self.layers)} layers"
            )

    # -- splitting -------------------------------------------------------------
    def split(self, index: int) -> "SplitNetwork":
        """Split after spine layer ``index`` (the offload point).

        Both halves share the original (already built) layer objects — the
        same arrays the model files describe, so front+rear inference is
        bit-identical to full inference.
        """
        self._require_built()
        if not 0 <= index < len(self.layers) - 1:
            raise IndexError(
                f"split index {index} out of range for {len(self.layers)} "
                f"layers (the rear part needs at least one layer)"
            )
        front = Network(f"{self.name}/front", self.layers[: index + 1])
        front.input_shape = self.input_shape
        front._built = True
        rear = Network(f"{self.name}/rear", self.layers[index + 1 :])
        rear.input_shape = self.layers[index].out_shape
        rear._built = True
        return SplitNetwork(front=front, rear=rear, split_index=index)

    # -- offload points -------------------------------------------------------
    def offload_points(self) -> List[OffloadPoint]:
        """Named candidate offload points along the spine.

        ``input`` (index 0) means full offloading — the client ships the raw
        input.  Conv/pool spine layers get Fig.-8-style ordinal labels; other
        spine layers (LRN, inception, fc, …) are addressable by layer name.
        The final layer is excluded (nothing left to offload after it).
        """
        self._require_built()
        points: List[OffloadPoint] = []
        conv_seen = 0
        pool_seen = 0
        for index, layer in enumerate(self.layers[:-1]):
            if layer.kind == "input":
                label = "input"
            elif layer.kind == "conv":
                label = f"{_ordinal(conv_seen)}_conv"
                conv_seen += 1
            elif layer.kind == "pool":
                label = f"{_ordinal(pool_seen)}_pool"
                pool_seen += 1
            else:
                label = layer.name
            points.append(
                OffloadPoint(
                    index=index,
                    label=label,
                    layer_name=layer.name,
                    layer_kind=layer.kind,
                )
            )
        return points

    def point_by_label(self, label: str) -> OffloadPoint:
        for point in self.offload_points():
            if point.label == label:
                return point
        raise KeyError(f"no offload point labelled {label!r} in {self.name!r}")

    # -- early exits -------------------------------------------------------
    def exit_points(self) -> List[ExitPoint]:
        """Every place inference may stop, earliest first.

        One :class:`ExitPoint` per :class:`~repro.nn.layers.exits.ExitHead`
        on the spine, plus the final exit (the trunk's own classifier).  A
        network without exit heads still returns the final exit, so the
        deadline optimizer works on any zoo model.
        """
        from repro.nn.layers.exits import ExitHead

        self._require_built()
        points = [
            ExitPoint(index=index, name=layer.name, accuracy=layer.accuracy)
            for index, layer in enumerate(self.layers)
            if isinstance(layer, ExitHead)
        ]
        points.append(
            ExitPoint(
                index=len(self.layers) - 1,
                name="final",
                accuracy=(
                    self.final_accuracy if self.final_accuracy is not None
                    else 1.0
                ),
                is_final=True,
            )
        )
        return points

    def exit_by_name(self, name: str) -> ExitPoint:
        for point in self.exit_points():
            if point.name == name:
                return point
        raise KeyError(f"no exit named {name!r} in {self.name!r}")

    def at_exit(self, exit_index: Optional[int]) -> "Network":
        """The network truncated at an exit: trunk up to it, then its head.

        ``exit_index`` is the spine index of an
        :class:`~repro.nn.layers.exits.ExitHead` (``None`` or the last
        index: the full network, returned as-is).  The result shares the
        original built layer objects — the pruned walk is bit-identical to
        running the trunk then the head in place — so it can be wrapped in
        a :class:`~repro.nn.model.Model`, split at any offload point before
        the exit, and served like any other network.
        """
        from repro.nn.layers.exits import ExitHead

        self._require_built()
        if exit_index is None or exit_index == len(self.layers) - 1:
            return self
        layer = self.layers[exit_index]
        if not isinstance(layer, ExitHead):
            raise ValueError(
                f"layer {exit_index} of {self.name!r} is {layer.kind!r}, "
                "not an exit head"
            )
        pruned = Network(
            f"{self.name}@{layer.name}",
            list(self.layers[:exit_index]) + list(layer.head),
        )
        pruned.input_shape = self.input_shape
        pruned._built = True
        pruned.final_accuracy = layer.accuracy
        return pruned

    def forward_exit(
        self,
        x: np.ndarray,
        exit_index: Optional[int] = None,
        optimize: Optional[bool] = None,
    ) -> np.ndarray:
        """Forward pass that stops at an exit (``None``: the full network).

        The optimized path compiles the exit-pruned plan
        (``compile_plan(exit_point=k)``); the reference path walks trunk
        layers then the head.  Both are bitwise-identical under the
        reference backend.
        """
        self._require_built()
        if exit_index is None or exit_index == len(self.layers) - 1:
            return self.forward(x, optimize=optimize)
        if optimize is None:
            from repro.nn import plan as plan_module

            optimize = plan_module.optimization_enabled()
        if optimize:
            plan = self.plan_for(0, exit_index, exit_point=exit_index)
            return plan.forward(x)
        return self.at_exit(exit_index).forward(x, optimize=False)

    # -- accounting -------------------------------------------------------------
    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def param_bytes(self) -> int:
        return sum(layer.param_bytes for layer in self.layers)

    def describe(self) -> dict:
        self._require_built()
        description = {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "layers": [layer.describe() for layer in self.layers],
        }
        # Only multi-exit variants carry the key: adding it unconditionally
        # would perturb every existing model's description checksum.
        if self.final_accuracy is not None:
            description["final_accuracy"] = self.final_accuracy
        return description

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "built" if self._built else "unbuilt"
        return f"Network({self.name!r}, {len(self.layers)} layers, {state})"


@dataclass(frozen=True)
class SplitNetwork:
    """Front/rear halves produced by :meth:`Network.split`."""

    front: Network
    rear: Network
    split_index: int

    def forward(self, x: np.ndarray) -> np.ndarray:
        """front ∘ rear — must equal the unsplit network's forward."""
        return self.rear.forward(self.front.forward(x))

    @property
    def feature_shape(self) -> Tuple[int, ...]:
        """Shape of the tensor crossing the network (the "feature data")."""
        return self.front.layers[-1].out_shape
