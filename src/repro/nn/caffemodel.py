"""Binary parameter blobs: the reproduction's ``.caffemodel``.

CaffeJS consumes a pair of files per model: the prototxt architecture
(:mod:`repro.nn.prototxt`) and a binary blob of trained parameters.  This
module implements the blob half with a simple, self-describing container,
so a model round-trips through *files on disk* exactly the way the
offloading system ships it.

Layout (little-endian):

====  ==========================================
8 B   magic ``RPWGHT01``
4 B   header length ``H``
H B   JSON header: model name + ordered blob
      records (layer-qualified name, shape)
—     per blob: raw float32 payload
4 B   CRC-32 of everything above
====  ==========================================
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.nn.layers import InceptionModule
from repro.nn.network import Network

MAGIC = b"RPWGHT01"


class WeightsFormatError(ValueError):
    """Raised on malformed or mismatched weight blobs."""


def _iter_blobs(network: Network) -> List[Tuple[str, np.ndarray]]:
    """All parameter blobs in deterministic order, layer-qualified names."""
    blobs: List[Tuple[str, np.ndarray]] = []
    for layer in network.layers:
        param_arrays = getattr(layer, "param_arrays", None)
        if param_arrays is not None:  # composite layers
            for name, blob in sorted(param_arrays().items()):
                blobs.append((f"{layer.name}::{name}", blob))
        else:
            for name, blob in sorted(layer.params.items()):
                blobs.append((f"{layer.name}::{name}", blob))
    return blobs


def encode_weights(network: Network, model_name: str = "") -> bytes:
    """Serialize a built network's parameters."""
    if not network.built:
        raise WeightsFormatError("network must be built before serialization")
    blobs = _iter_blobs(network)
    header = {
        "model": model_name or network.name,
        "blobs": [
            {"name": name, "shape": list(blob.shape)} for name, blob in blobs
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [MAGIC, struct.pack("<I", len(header_bytes)), header_bytes]
    parts.extend(
        np.asarray(blob, dtype=np.float32).tobytes() for _name, blob in blobs
    )
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body))


def decode_weights(data: bytes) -> Dict[str, np.ndarray]:
    """Parse a weight blob into {qualified name: array}."""
    if len(data) < len(MAGIC) + 8:
        raise WeightsFormatError("weight bytes too short")
    body, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
    if zlib.crc32(body) != crc:
        raise WeightsFormatError("CRC mismatch: weights corrupted")
    if not body.startswith(MAGIC):
        raise WeightsFormatError("bad magic: not a weight blob")
    offset = len(MAGIC)
    (header_len,) = struct.unpack("<I", body[offset : offset + 4])
    offset += 4
    header = json.loads(body[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    blobs: Dict[str, np.ndarray] = {}
    for record in header["blobs"]:
        shape = tuple(int(d) for d in record["shape"])
        count = int(np.prod(shape)) if shape else 1
        raw = body[offset : offset + count * 4]
        if len(raw) != count * 4:
            raise WeightsFormatError(f"truncated blob {record['name']!r}")
        offset += count * 4
        blobs[record["name"]] = np.frombuffer(raw, dtype=np.float32).reshape(shape)
    if offset != len(body):
        raise WeightsFormatError(f"{len(body) - offset} trailing bytes")
    return blobs


def apply_weights(network: Network, blobs: Dict[str, np.ndarray]) -> None:
    """Load decoded blobs into a built network (shapes must match)."""
    expected = dict(_iter_blobs(network))
    if set(expected) != set(blobs):
        missing = sorted(set(expected) - set(blobs))
        extra = sorted(set(blobs) - set(expected))
        raise WeightsFormatError(
            f"blob set mismatch: missing {missing[:3]}, unexpected {extra[:3]}"
        )
    for layer in network.layers:
        if isinstance(layer, InceptionModule):
            for index, branch in enumerate(layer.branches):
                for inner in branch:
                    for key in list(inner.params):
                        qualified = f"{layer.name}::b{index}/{inner.name}/{key}"
                        _assign(inner.params, key, blobs[qualified], qualified)
        elif hasattr(layer, "body"):  # ResidualBlock
            for prefix, layers in (("body", layer.body), ("shortcut", layer.shortcut)):
                for inner in layers:
                    for key in list(inner.params):
                        qualified = f"{layer.name}::{prefix}/{inner.name}/{key}"
                        _assign(inner.params, key, blobs[qualified], qualified)
        else:
            for key in list(layer.params):
                qualified = f"{layer.name}::{key}"
                _assign(layer.params, key, blobs[qualified], qualified)


def _assign(params: dict, key: str, blob: np.ndarray, qualified: str) -> None:
    if params[key].shape != blob.shape:
        raise WeightsFormatError(
            f"shape mismatch for {qualified!r}: "
            f"{params[key].shape} vs {blob.shape}"
        )
    params[key] = np.array(blob, dtype=np.float32, copy=True)


def save_model_files(model, directory: str) -> Tuple[str, str]:
    """Write (deploy.prototxt, weights.bin) for a model; returns paths."""
    import os

    from repro.nn.prototxt import network_to_prototxt

    os.makedirs(directory, exist_ok=True)
    prototxt_path = os.path.join(directory, f"{model.name}.prototxt")
    weights_path = os.path.join(directory, f"{model.name}.weights.bin")
    with open(prototxt_path, "w", encoding="utf-8") as handle:
        handle.write(network_to_prototxt(model.network))
    with open(weights_path, "wb") as handle:
        handle.write(encode_weights(model.network, model.name))
    return prototxt_path, weights_path


def load_model_files(prototxt_path: str, weights_path: str):
    """Rebuild a model from (prototxt, weights) files — bit-exact params."""
    from repro.nn.model import Model
    from repro.nn.prototxt import network_from_prototxt

    with open(prototxt_path, "r", encoding="utf-8") as handle:
        network = network_from_prototxt(handle.read())
    with open(weights_path, "rb") as handle:
        blobs = decode_weights(handle.read())
    apply_weights(network, blobs)
    return Model(network.name, network)
