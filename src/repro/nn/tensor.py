"""Tensor helpers: shapes, im2col, pooling windows, text sizing.

Conventions
-----------
* Feature tensors are ``float32`` numpy arrays shaped ``(C, H, W)``
  (channels first, single sample) — Caffe's layout for one image.
* Convolution output dims use Caffe's *floor* formula; pooling uses
  Caffe's *ceil* formula with edge clipping.  Getting this right matters:
  the benchmark architectures only land on the paper's reported model and
  feature sizes with Caffe's exact arithmetic.
"""

from __future__ import annotations

import functools
import math
from typing import Optional, Tuple

import numpy as np

Shape3 = Tuple[int, int, int]

#: Bytes per value when feature data is serialized as snapshot text.
#: A real JS snapshot stores typed-array contents as a decimal literal list;
#: at full float32 precision ("%.9e" plus separator) that is ~17-18 bytes per
#: value.  With 18 the GoogLeNet features measure 14.5 MB after 1st_conv and
#: 3.6 MB after 1st_pool, bracketing the paper's 14.7 / 2.9 MB.
TEXT_BYTES_PER_VALUE = 18


@functools.lru_cache(maxsize=4096)
def conv_output_hw(
    height: int, width: int, kernel: int, stride: int, pad: int
) -> Tuple[int, int]:
    """Caffe convolution output size (floor formula).

    Memoized: cost models and sweeps recompute the same handful of shapes
    thousands of times per campaign.  (Failures are not cached —
    ``lru_cache`` only stores successful returns.)
    """
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv kernel {kernel}x{kernel}/s{stride} p{pad} does not fit "
            f"{height}x{width} input"
        )
    return out_h, out_w


@functools.lru_cache(maxsize=4096)
def pool_output_hw(
    height: int, width: int, kernel: int, stride: int, pad: int = 0
) -> Tuple[int, int]:
    """Caffe pooling output size (ceil formula with edge clamp). Memoized
    like :func:`conv_output_hw`."""
    out_h = int(math.ceil((height + 2 * pad - kernel) / stride)) + 1
    out_w = int(math.ceil((width + 2 * pad - kernel) / stride)) + 1
    if pad > 0:
        # Caffe clips the last window so it starts strictly inside the
        # padded image.
        if (out_h - 1) * stride >= height + pad:
            out_h -= 1
        if (out_w - 1) * stride >= width + pad:
            out_w -= 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pool kernel {kernel}x{kernel}/s{stride} p{pad} does not fit "
            f"{height}x{width} input"
        )
    return out_h, out_w


def pad_chw(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad height and width of a (C, H, W) tensor."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)), mode="constant")


def im2col(
    x: np.ndarray,
    kernel: int,
    stride: int,
    pad: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unfold a (C, H, W) tensor into columns for matmul convolution.

    Returns an array shaped ``(C * kernel * kernel, out_h * out_w)`` whose
    column ``j`` holds the receptive field of output position ``j``.

    ``out`` lets a caller reuse a scratch buffer across forwards of the
    same shape (it must hold ``C * kernel² * out_h * out_w`` elements of
    ``x``'s dtype); the returned array is then a view into it, valid until
    the next call that reuses the buffer.
    """
    channels, height, width = x.shape
    out_h, out_w = conv_output_hw(height, width, kernel, stride, pad)
    padded = pad_chw(x, pad)
    if out is None:
        cols = np.empty(
            (channels, kernel, kernel, out_h, out_w), dtype=padded.dtype
        )
    else:
        if out.size != channels * kernel * kernel * out_h * out_w:
            raise ValueError(
                f"im2col buffer holds {out.size} elements, need "
                f"{channels * kernel * kernel * out_h * out_w}"
            )
        cols = out.reshape(channels, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, ky, kx, :, :] = padded[:, ky:y_end:stride, kx:x_end:stride]
    return cols.reshape(channels * kernel * kernel, out_h * out_w)


def im2col_batch(
    xs: np.ndarray,
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Unfold a batch of ``(N, C, H, W)`` tensors into stacked columns.

    Returns ``(N, C * kernel * kernel, out_h * out_w)`` — per-sample
    identical (bit for bit) to :func:`im2col`, but each receptive-field
    copy moves all N samples at once, amortizing the per-slice overhead
    that dominates small convolutions.
    """
    count, channels, height, width = xs.shape
    out_h, out_w = conv_output_hw(height, width, kernel, stride, pad)
    if pad:
        padded = np.zeros(
            (count, channels, height + 2 * pad, width + 2 * pad),
            dtype=xs.dtype,
        )
        padded[:, :, pad : pad + height, pad : pad + width] = xs
    else:
        padded = xs
    cols = np.empty(
        (count, channels, kernel, kernel, out_h, out_w), dtype=xs.dtype
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    return cols.reshape(count, channels * kernel * kernel, out_h * out_w)


def pool_patches(
    x: np.ndarray, kernel: int, stride: int, pad: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Gather clipped pooling windows.

    Returns ``(patches, (out_h, out_w))`` where ``patches`` is a list-like
    object indexed as ``patches[c][i]`` — implemented as a masked stack with
    ``-inf`` outside the valid region so max pooling can reduce directly.
    """
    channels, height, width = x.shape
    out_h, out_w = pool_output_hw(height, width, kernel, stride, pad)
    neg = np.full(
        (channels, kernel, kernel, out_h, out_w), -np.inf, dtype=np.float32
    )
    for ky in range(kernel):
        for kx in range(kernel):
            # Source coordinates in the *unpadded* image for each output cell.
            ys = np.arange(out_h) * stride + ky - pad
            xs = np.arange(out_w) * stride + kx - pad
            valid_y = (ys >= 0) & (ys < height)
            valid_x = (xs >= 0) & (xs < width)
            if not valid_y.any() or not valid_x.any():
                continue
            yy = ys[valid_y]
            xx = xs[valid_x]
            block = x[:, yy[:, None], xx[None, :]]
            target = neg[:, ky, kx]
            sub = target[:, valid_y, :]
            sub[:, :, valid_x] = block
            target[:, valid_y, :] = sub
    return neg, (out_h, out_w)


def max_pool_strided(
    x: np.ndarray,
    kernel: int,
    stride: int,
    pad: int = 0,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Max pooling as ``kernel²`` strided in-place maxima (no patch stack).

    Bitwise-identical to reducing :func:`pool_patches` with ``max`` — the
    maximum of the same window values is exact whatever the evaluation
    order — but touches each input element once per covering window instead
    of materializing the ``(C, k, k, out_h, out_w)`` stack, which dominated
    GoogLeNet's forward profile.

    ``out`` lets a caller reuse an output buffer across forwards (it must
    hold ``C * out_h * out_w`` float32 elements); the returned array is a
    view into it.  Works for any leading (channel-like) dimension, so a
    batched caller can fold ``(N, C, H, W)`` into ``(N*C, H, W)``.
    """
    channels, height, width = x.shape
    out_h, out_w = pool_output_hw(height, width, kernel, stride, pad)
    if out is None:
        result = np.empty((channels, out_h, out_w), dtype=np.float32)
    else:
        if out.size != channels * out_h * out_w:
            raise ValueError(
                f"max_pool buffer holds {out.size} elements, need "
                f"{channels * out_h * out_w}"
            )
        result = out.reshape(channels, out_h, out_w)
    result.fill(-np.inf)
    for ky in range(kernel):
        y0 = ky - pad
        i_lo = -(y0 // stride) if y0 < 0 else 0  # ceil(-y0 / stride)
        i_hi = min(out_h, (height - 1 - y0) // stride + 1)
        if i_hi <= i_lo:
            continue
        for kx in range(kernel):
            x0 = kx - pad
            j_lo = -(x0 // stride) if x0 < 0 else 0  # ceil(-x0 / stride)
            j_hi = min(out_w, (width - 1 - x0) // stride + 1)
            if j_hi <= j_lo:
                continue
            block = x[
                :,
                y0 + i_lo * stride : y0 + (i_hi - 1) * stride + 1 : stride,
                x0 + j_lo * stride : x0 + (j_hi - 1) * stride + 1 : stride,
            ]
            target = result[:, i_lo:i_hi, j_lo:j_hi]
            np.maximum(target, block, out=target)
    return result


def element_count(shape: Shape3) -> int:
    count = 1
    for dim in shape:
        count *= dim
    return count


def text_serialized_bytes(shape_or_count) -> int:
    """Snapshot-text size of a feature tensor (decimal literals)."""
    if isinstance(shape_or_count, tuple):
        count = element_count(shape_or_count)
    else:
        count = int(shape_or_count)
    return count * TEXT_BYTES_PER_VALUE


def measure_text_bytes(array: np.ndarray) -> int:
    """Exact text size of an array serialized as full-precision literals.

    Used by tests to validate that :data:`TEXT_BYTES_PER_VALUE` is an honest
    approximation of real serialization.
    """
    flat = array.ravel()
    return sum(len(f"{float(value):.9e}") + 1 for value in flat)


def binary_serialized_bytes(shape_or_count) -> int:
    """float32 binary size of a feature tensor (4 bytes/value)."""
    if isinstance(shape_or_count, tuple):
        count = element_count(shape_or_count)
    else:
        count = int(shape_or_count)
    return count * 4
