"""Models: a network plus its distributable file set.

A *model* is what the client pre-sends to the edge server: "the NN model
files (including the description/parameters of the NN)" (paper §III.B.1).
We represent that as one JSON description file plus one parameter blob per
parameterized spine layer, with real byte sizes (4 bytes per float32
parameter plus a small header) so transfer times are honest.

Models can be split at an offload point into *front* and *rear* models with
disjoint file sets; pre-sending only the rear file set is the paper's
privacy mechanism (the server cannot invert features without the front
parameters).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InceptionModule,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import Layer
from repro.nn.network import Network
from repro.sim import SeededRng

#: serialization overhead per parameter blob file (shape header, magic, …)
BLOB_HEADER_BYTES = 128


@dataclass(frozen=True)
class ModelFile:
    """One distributable file of a model."""

    name: str
    kind: str  # "description" | "parameters"
    size_bytes: int
    checksum: str
    layer_name: Optional[str] = None

    @property
    def size_mib(self) -> float:
        return self.size_bytes / (1024**2)


def _checksum(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()[:16]


class Model:
    """A named, built network with its file manifest."""

    def __init__(self, name: str, network: Network):
        if not network.built:
            raise ValueError(f"model {name!r} needs a built network")
        self.name = name
        self.network = network
        self._files: Optional[List[ModelFile]] = None

    # -- identity / files --------------------------------------------------------
    def description_json(self) -> str:
        return json.dumps(self.network.describe(), sort_keys=True)

    def files(self) -> List[ModelFile]:
        """The model's file manifest (computed once, then cached)."""
        if self._files is None:
            manifest: List[ModelFile] = []
            description = self.description_json().encode("utf-8")
            manifest.append(
                ModelFile(
                    name=f"{self.name}.json",
                    kind="description",
                    size_bytes=len(description),
                    checksum=_checksum(description),
                )
            )
            for layer in self.network.layers:
                blobs = self._layer_blobs(layer)
                if not blobs:
                    continue
                raw = b"".join(blob.tobytes() for _, blob in sorted(blobs.items()))
                manifest.append(
                    ModelFile(
                        name=f"{self.name}.{layer.name}.bin",
                        kind="parameters",
                        size_bytes=len(raw) + BLOB_HEADER_BYTES,
                        checksum=_checksum(raw),
                        layer_name=layer.name,
                    )
                )
            self._files = manifest
        return list(self._files)

    @staticmethod
    def _layer_blobs(layer: Layer) -> Dict[str, np.ndarray]:
        param_arrays = getattr(layer, "param_arrays", None)
        if param_arrays is not None:  # composite layers (inception/residual)
            return param_arrays()
        return dict(layer.params)

    @property
    def model_id(self) -> str:
        digest = hashlib.sha1()
        for file in self.files():
            digest.update(file.checksum.encode("ascii"))
        return f"{self.name}:{digest.hexdigest()[:12]}"

    def fingerprint(self) -> str:
        """Content fingerprint of the network structure and every parameter.

        This is the plan cache's params digest (sha256 over structure plus
        per-array digests), memoized on the :class:`Network` and invalidated
        whenever a parameter array is replaced — so calling it once at model
        load/store time makes every later lookup (plan-cache keys, the
        fleet's ``MODEL_QUERY`` digest handshake) near-free.
        """
        from repro.nn.plan import network_params_digest

        return network_params_digest(self.network)

    @property
    def total_bytes(self) -> int:
        return sum(file.size_bytes for file in self.files())

    @property
    def size_mib(self) -> float:
        """Model size in MiB — the unit the paper's Table 1 reports."""
        return self.total_bytes / (1024**2)

    # -- inference -----------------------------------------------------------------
    def inference(self, x: np.ndarray) -> np.ndarray:
        """Full forward execution (the CaffeJS ``inference()`` call)."""
        return self.network.forward(x)

    def inference_batch(self, xs) -> np.ndarray:
        """Forward N inputs at once; returns stacked ``(N, ...)`` outputs.

        Runs the compiled plan's batched kernels (one stacked im2col/matmul
        per step) when optimization is on — how the edge server amortizes
        concurrent partial-inference sessions over one pass.
        """
        return self.network.forward_batch(xs)

    # -- splitting -----------------------------------------------------------------
    def split(self, index: int) -> Tuple["Model", "Model"]:
        """Split at an offload point into (front model, rear model)."""
        halves = self.network.split(index)
        return (
            Model(f"{self.name}-front@{index}", halves.front),
            Model(f"{self.name}-rear@{index}", halves.rear),
        )

    # -- real on-disk serialization ---------------------------------------------
    def save(self, directory: str) -> List[str]:
        """Write description JSON + one ``.npz`` of parameters; returns paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        desc_path = os.path.join(directory, f"{self.name}.json")
        with open(desc_path, "w", encoding="utf-8") as handle:
            handle.write(self.description_json())
        paths.append(desc_path)
        blobs: Dict[str, np.ndarray] = {}
        for layer in self.network.layers:
            for key, blob in self._layer_blobs(layer).items():
                blobs[f"{layer.name}::{key}"] = blob
        params_path = os.path.join(directory, f"{self.name}.params.npz")
        np.savez(params_path, **blobs)
        paths.append(params_path)
        return paths

    @classmethod
    def load(cls, directory: str, name: str) -> "Model":
        """Rebuild a model from :meth:`save` output (exact parameters)."""
        desc_path = os.path.join(directory, f"{name}.json")
        with open(desc_path, "r", encoding="utf-8") as handle:
            description = json.load(handle)
        network = network_from_description(description)
        with np.load(os.path.join(directory, f"{name}.params.npz")) as archive:
            for layer in network.layers:
                cls._restore_layer(layer, archive)
        return cls(name, network)

    @staticmethod
    def _restore_layer(layer: Layer, archive) -> None:
        from repro.nn.layers.composite import ResidualBlock
        from repro.nn.layers.exits import ExitHead

        if isinstance(layer, ExitHead):
            for inner in layer.head:
                for key in list(inner.params):
                    inner.params[key] = archive[
                        f"{layer.name}::head/{inner.name}/{key}"
                    ]
            return
        if isinstance(layer, InceptionModule):
            for index, branch in enumerate(layer.branches):
                for inner in branch:
                    for key in list(inner.params):
                        inner.params[key] = archive[
                            f"{layer.name}::b{index}/{inner.name}/{key}"
                        ]
            return
        if isinstance(layer, ResidualBlock):
            for prefix, layers in (("body", layer.body), ("shortcut", layer.shortcut)):
                for inner in layers:
                    for key in list(inner.params):
                        inner.params[key] = archive[
                            f"{layer.name}::{prefix}/{inner.name}/{key}"
                        ]
            return
        for key in list(layer.params):
            layer.params[key] = archive[f"{layer.name}::{key}"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Model({self.name!r}, {self.size_mib:.1f} MiB)"


# -- description -> network reconstruction ------------------------------------

def _layer_from_description(entry: dict) -> Layer:
    kind = entry["kind"]
    name = entry["name"]
    config = entry.get("config", {})
    if kind == "input":
        return InputLayer(tuple(config["shape"]), name=name)
    if kind == "conv":
        return ConvLayer(
            name,
            num_filters=config["num_filters"],
            kernel=config["kernel"],
            stride=config["stride"],
            pad=config["pad"],
            groups=config.get("groups", 1),
        )
    if kind == "pool":
        return PoolLayer(
            name,
            kernel=config["kernel"],
            stride=config["stride"],
            pad=config["pad"],
            mode=config["mode"],
        )
    if kind == "fc":
        return FCLayer(name, out_features=config["out_features"])
    if kind == "relu":
        return ReLULayer(name)
    if kind == "dropout":
        return DropoutLayer(name, rate=config["rate"])
    if kind == "softmax":
        return SoftmaxLayer(name)
    if kind == "lrn":
        return LRNLayer(
            name,
            local_size=config["local_size"],
            alpha=config["alpha"],
            beta=config["beta"],
            k=config["k"],
        )
    if kind == "inception":
        branches = [
            [_layer_from_description(inner) for inner in branch]
            for branch in config["branches"]
        ]
        return InceptionModule(name, branches)
    if kind == "batchnorm":
        from repro.nn.layers import BatchNormLayer

        return BatchNormLayer(name, eps=config["eps"])
    if kind == "scale":
        from repro.nn.layers import ScaleLayer

        return ScaleLayer(name, bias=config["bias"])
    if kind == "residual":
        from repro.nn.layers.composite import ResidualBlock

        return ResidualBlock(
            name,
            body=[_layer_from_description(inner) for inner in config["body"]],
            shortcut=[
                _layer_from_description(inner) for inner in config["shortcut"]
            ],
        )
    if kind == "exit":
        from repro.nn.layers.exits import ExitHead

        return ExitHead(
            name,
            head=[_layer_from_description(inner) for inner in config["head"]],
            accuracy=config["accuracy"],
        )
    raise ValueError(f"unknown layer kind {kind!r} in description")


def network_from_description(description: dict) -> Network:
    """Reconstruct and build a network from a description dict."""
    layers = [_layer_from_description(entry) for entry in description["layers"]]
    network = Network(description["name"], layers)
    network.build(
        SeededRng(0, f"load/{description['name']}"),
        input_shape=tuple(description["input_shape"]),
    )
    if "final_accuracy" in description:
        network.final_accuracy = description["final_accuracy"]
    return network
