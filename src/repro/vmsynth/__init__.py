"""VM synthesis: on-demand installation of the offloading system.

Paper §III.B.3 / §IV.C: when an edge server lacks the offloading system,
the client ships a *VM overlay* — the compressed delta between a base VM
image (plain Ubuntu) and one with the offloading server program, the
browser, the support libraries and optionally the DNN model installed.
The server synthesizes a runnable VM by applying the overlay to its base
image (elijah-cloudlet style [26]).

* :mod:`repro.vmsynth.image` — chunked disk images, delta and apply.
* :mod:`repro.vmsynth.components` — the installable software components
  with the paper's sizes (browser ~45 MB, libraries ~54 MB, server
  program ~1 MB, plus the model) and their compression behaviour.
* :mod:`repro.vmsynth.overlay` — overlay construction and sizing.
* :mod:`repro.vmsynth.synthesis` — timing: transfer + decompress + apply.
"""

from repro.vmsynth.components import (
    SoftwareComponent,
    browser_component,
    libraries_component,
    model_component,
    offloading_stack,
    server_program_component,
)
from repro.vmsynth.image import DiskImage, apply_delta, delta_chunks
from repro.vmsynth.overlay import VMOverlay, build_overlay
from repro.vmsynth.synthesis import SynthesisEstimate, estimate_installation

__all__ = [
    "DiskImage",
    "SoftwareComponent",
    "SynthesisEstimate",
    "VMOverlay",
    "apply_delta",
    "browser_component",
    "build_overlay",
    "delta_chunks",
    "estimate_installation",
    "libraries_component",
    "model_component",
    "offloading_stack",
    "server_program_component",
]
