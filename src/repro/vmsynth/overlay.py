"""VM overlays: the compressed customization delta the client ships."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.nn.model import Model
from repro.vmsynth.components import SoftwareComponent, model_component, offloading_stack
from repro.vmsynth.image import DiskImage, delta_chunks

#: LZMA decompression throughput on the server, bytes of compressed input/s
DECOMPRESS_BPS = 80e6
#: chunk-apply throughput (sequential writes), raw bytes/s
APPLY_BPS = 400e6
#: launching the synthesized VM instance (QEMU/KVM boot to ready)
VM_BOOT_SECONDS = 0.8


@dataclass
class VMOverlay:
    """A compressed overlay: components + delta chunks + bundled models.

    ``size_bytes`` (the wire size) is the LZMA-compressed total, which is
    what Table 1 reports as "VM overlay (MB)".
    """

    name: str
    base_fingerprint: str
    target_fingerprint: str
    delta: Dict[int, str]
    components: List[SoftwareComponent]
    bundled_models: List[Model] = field(default_factory=list)

    @property
    def raw_bytes(self) -> int:
        return sum(component.raw_bytes for component in self.components)

    @property
    def size_bytes(self) -> int:
        """Compressed on-the-wire size."""
        return sum(component.compressed_bytes for component in self.components)

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6

    def synthesis_seconds(self) -> float:
        """Server-side cost: decompress the overlay, apply chunks, boot."""
        return (
            self.size_bytes / DECOMPRESS_BPS
            + self.raw_bytes / APPLY_BPS
            + VM_BOOT_SECONDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VMOverlay({self.name!r}, {self.size_mb:.1f} MB compressed)"


def build_overlay(
    base: DiskImage,
    models: List[Model],
    extra_components: List[SoftwareComponent] = (),
) -> VMOverlay:
    """Create the overlay installing the offloading system + models.

    Mirrors the paper's §IV.C construction: the offloading stack plus the
    app's DNN model, as the delta between the base image and the customized
    image, compressed per component.
    """
    components = offloading_stack() + list(extra_components)
    components += [model_component(model) for model in models]
    customized = base.with_installed(components)
    return VMOverlay(
        name=f"overlay-{'+'.join(model.name for model in models) or 'system'}",
        base_fingerprint=base.fingerprint(),
        target_fingerprint=customized.fingerprint(),
        delta=delta_chunks(base, customized),
        components=components,
        bundled_models=list(models),
    )
