"""Chunked disk images: the substrate of VM synthesis.

A disk image is a map *chunk index → content id* (a content hash stands in
for the chunk's bytes).  Installing software appends/overwrites chunks;
the *delta* between a base image and a customized image is the chunk set
VM synthesis ships, and *apply* reconstructs the customized image on the
server — with verification, so synthesis against the wrong base fails
loudly instead of producing a corrupt VM.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable

#: chunk granularity of the content store (1 MB, cloudlet-like)
CHUNK_BYTES = 1_000_000


class ImageMismatchError(RuntimeError):
    """Raised when a delta is applied to an unexpected base image."""


def _content_id(*parts: str) -> str:
    return hashlib.sha1("|".join(parts).encode("utf-8")).hexdigest()[:16]


@dataclass
class DiskImage:
    """An immutable-by-convention chunked disk image."""

    name: str
    chunks: Dict[int, str] = field(default_factory=dict)
    chunk_bytes: int = CHUNK_BYTES

    @classmethod
    def synthetic(cls, name: str, size_bytes: int, seed: str = "") -> "DiskImage":
        """A deterministic synthetic image of roughly ``size_bytes``."""
        count = max(1, (size_bytes + CHUNK_BYTES - 1) // CHUNK_BYTES)
        return cls(
            name=name,
            chunks={i: _content_id(name, seed, str(i)) for i in range(count)},
        )

    @classmethod
    def ubuntu_base(cls, size_bytes: int = 600 * 1_000_000) -> "DiskImage":
        """The base VM image: "a VM image that contains an OS" (Ubuntu)."""
        return cls.synthetic("ubuntu-12.04-base", size_bytes, seed="base")

    @property
    def size_bytes(self) -> int:
        return len(self.chunks) * self.chunk_bytes

    def fingerprint(self) -> str:
        digest = hashlib.sha1()
        for index in sorted(self.chunks):
            digest.update(f"{index}:{self.chunks[index]};".encode("ascii"))
        return digest.hexdigest()[:16]

    def with_installed(self, components: Iterable) -> "DiskImage":
        """A new image with the components' chunks written after the end."""
        chunks = dict(self.chunks)
        next_index = max(chunks) + 1 if chunks else 0
        for component in components:
            count = max(
                1, (component.raw_bytes + self.chunk_bytes - 1) // self.chunk_bytes
            )
            for i in range(count):
                chunks[next_index] = _content_id(component.name, str(i))
                next_index += 1
        return DiskImage(
            name=f"{self.name}+custom", chunks=chunks, chunk_bytes=self.chunk_bytes
        )


def delta_chunks(base: DiskImage, modified: DiskImage) -> Dict[int, str]:
    """Chunks present/changed in ``modified`` relative to ``base``."""
    if base.chunk_bytes != modified.chunk_bytes:
        raise ImageMismatchError("chunk size mismatch between images")
    return {
        index: content
        for index, content in modified.chunks.items()
        if base.chunks.get(index) != content
    }


def apply_delta(
    base: DiskImage,
    delta: Dict[int, str],
    expected_fingerprint: str = "",
    name: str = "synthesized",
) -> DiskImage:
    """Reconstruct the customized image: base chunks overlaid with delta."""
    chunks = dict(base.chunks)
    chunks.update(delta)
    image = DiskImage(name=name, chunks=chunks, chunk_bytes=base.chunk_bytes)
    if expected_fingerprint and image.fingerprint() != expected_fingerprint:
        raise ImageMismatchError(
            "synthesized image does not match the expected fingerprint; "
            "wrong base VM image?"
        )
    return image
