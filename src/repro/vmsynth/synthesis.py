"""Installation timing: what Table 1 calls "synthesis time".

The paper measures "the time to perform VM synthesis (including the time
to upload VM overlay and the time to synthesize a VM instance)".
:func:`estimate_installation` computes that analytically for planning;
:func:`deliver_overlay` performs it for real over the simulated network
(used by the handover example and integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.channel import ChannelEnd
from repro.netsim.link import NetemProfile
from repro.vmsynth.overlay import VMOverlay


@dataclass(frozen=True)
class SynthesisEstimate:
    """Predicted installation cost of one overlay."""

    overlay_bytes: int
    transfer_seconds: float
    synthesis_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.synthesis_seconds

    @property
    def overlay_mb(self) -> float:
        return self.overlay_bytes / 1e6


def estimate_installation(overlay: VMOverlay, link: NetemProfile) -> SynthesisEstimate:
    """Upload time at the link's rate plus server-side synthesis."""
    return SynthesisEstimate(
        overlay_bytes=overlay.size_bytes,
        transfer_seconds=link.transfer_seconds(overlay.size_bytes),
        synthesis_seconds=overlay.synthesis_seconds(),
    )


def deliver_overlay(endpoint: ChannelEnd, overlay: VMOverlay):
    """Simulated process: ship the overlay and wait for VM_READY.

    Returns the virtual time at which the server became ready.
    """
    from repro.core import protocol

    endpoint.send(protocol.VM_OVERLAY, overlay, size_bytes=overlay.size_bytes)
    ready = yield endpoint.recv_kind(protocol.VM_READY)
    return ready.delivered_at
