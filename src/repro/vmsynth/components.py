"""Installable software components and their compression behaviour.

The paper itemizes its overlay: "the browser (~45MB), the libraries
(~54MB), the offloading server program (~1MB), and the model (rest) before
compression", compressed with LZMA to 65 MB (GoogLeNet) or 82 MB
(AgeNet/GenderNet).  Those numbers pin the compression ratios: executable
binaries and libraries LZMA-compress to roughly a third of their size,
while trained float32 parameters are nearly incompressible — solving the
paper's two overlay equations gives ~0.37 for the system stack and ~0.98
for models, which is what we use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.model import Model

MB = 1_000_000

#: LZMA ratio for executable code / shared libraries
BINARY_COMPRESSION_RATIO = 0.374
#: LZMA ratio for float32 model parameters (high-entropy data)
MODEL_COMPRESSION_RATIO = 0.98


@dataclass(frozen=True)
class SoftwareComponent:
    """One installable piece of the offloading system."""

    name: str
    raw_bytes: int
    compression_ratio: float

    def __post_init__(self) -> None:
        if self.raw_bytes <= 0:
            raise ValueError(f"component {self.name!r} must have positive size")
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError(
                f"compression ratio must be in (0, 1], got {self.compression_ratio}"
            )

    @property
    def compressed_bytes(self) -> int:
        return int(round(self.raw_bytes * self.compression_ratio))


def browser_component() -> SoftwareComponent:
    """The WebKit browser build (~45 MB)."""
    return SoftwareComponent("webkit-browser", 45 * MB, BINARY_COMPRESSION_RATIO)


def libraries_component() -> SoftwareComponent:
    """Support libraries (~54 MB)."""
    return SoftwareComponent("support-libraries", 54 * MB, BINARY_COMPRESSION_RATIO)


def server_program_component() -> SoftwareComponent:
    """The offloading server program (~1 MB)."""
    return SoftwareComponent("offloading-server", 1 * MB, BINARY_COMPRESSION_RATIO)


def offloading_stack() -> list:
    """Everything the offloading system itself needs."""
    return [browser_component(), libraries_component(), server_program_component()]


def model_component(model: Model) -> SoftwareComponent:
    """A DNN model's files as an overlay component."""
    return SoftwareComponent(
        f"model-{model.name}", model.total_bytes, MODEL_COMPRESSION_RATIO
    )
