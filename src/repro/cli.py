"""Command-line interface: regenerate any experiment from a shell.

Usage::

    python -m repro fig1
    python -m repro fig6 [--models googlenet agenet] [--bandwidth 30]
    python -m repro fig7
    python -m repro fig8 [--models agenet] [--max-points 6]
    python -m repro fig-accuracy [--models smallnet_exits] [--bandwidths 5 30]
    python -m repro table1
    python -m repro ablation {bandwidth,partition,decision,snapshot,gpu,
                              energy,cache,contention}
    python -m repro demo
    python -m repro fleet [--policy queue-aware] [--edges 3] [--sessions 40]
                          [--kill edge-0@1.5:4.0]
    python -m repro metrics [--format prometheus|json] [--trace-out t.json]

Every command prints the same rows/series the paper reports and exits 0
only if the paper's shape claims hold.  Run/campaign commands accept
``--metrics-out PATH`` to dump the merged telemetry of every simulator the
command built (Prometheus text, or JSON when the path ends in ``.json``),
plus the execution-engine flags ``--jobs N`` (fan independent sections
across N worker processes), ``--cache-dir DIR`` (content-addressed result
cache; unchanged scenarios are served from disk) and ``--no-cache``.
Run commands also accept ``--no-optimize`` to fall back from compiled
execution plans to the reference layer walk, ``--backend
{reference,tuned}`` (exported as ``REPRO_BACKEND``) to pick the kernel
backend, and ``--plan-cache-dir DIR`` (exported as ``REPRO_PLAN_CACHE``
so pool workers inherit it) to persist compiled plans across processes.
Results are byte-identical whichever way a command executes under the
``reference`` backend (``tuned`` is equivalent within a tested
tolerance); see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.nn.zoo import PAPER_MODELS


def _add_models_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--models",
        nargs="+",
        default=list(PAPER_MODELS),
        choices=list(PAPER_MODELS) + ["smallnet", "tinynet"],
        help="benchmark models to run (default: the paper's three)",
    )


def _add_bandwidth_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bandwidth",
        type=float,
        default=30.0,
        help="link bandwidth in Mbps (paper: 30)",
    )


def _add_metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write merged run telemetry here (.json -> JSON, else "
        "Prometheus text)",
    )


def _add_optimize_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="run DNN forwards on the reference layer walk instead of "
        "compiled execution plans (escape hatch; results are equivalent "
        "either way, see docs/PERFORMANCE.md)",
    )


def _apply_optimize_flag(args: argparse.Namespace) -> None:
    """Honour ``--no-optimize`` process-wide (workers inherit the env)."""
    if getattr(args, "no_optimize", False):
        import os

        from repro.nn import plan

        os.environ[plan.NO_OPTIMIZE_ENV] = "1"
        plan.set_optimization(False)


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    from repro.nn.backend import backend_names

    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="kernel backend for DNN forwards: 'reference' (the exact "
        "numpy path, bitwise-stable) or 'tuned' (float32 end-to-end, "
        "threaded GEMM; equivalent within tested tolerance).  Also "
        "settable via REPRO_BACKEND; workers inherit the choice",
    )


def _apply_backend_flag(args: argparse.Namespace) -> None:
    """Honour ``--backend`` process-wide (workers inherit the env)."""
    if getattr(args, "backend", None):
        import os

        from repro.nn import backend as backend_module

        os.environ[backend_module.BACKEND_ENV] = args.backend
        backend_module.set_backend(args.backend)


def _add_plan_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--plan-cache-dir",
        default=None,
        metavar="DIR",
        help="persist compiled execution plans here so later processes "
        "(including pool workers) rehydrate instead of recompiling; "
        "results are byte-identical either way",
    )


def _apply_plan_cache_flag(args: argparse.Namespace) -> None:
    """Honour ``--plan-cache-dir`` process-wide (workers inherit the env)."""
    if getattr(args, "plan_cache_dir", None):
        import os

        from repro.exec import cache as exec_cache

        os.environ[exec_cache.PLAN_CACHE_ENV] = args.plan_cache_dir
        exec_cache.set_plan_cache(args.plan_cache_dir)


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run independent sections across N worker processes "
        "(default: 1, serial; results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache: unchanged scenarios are "
        "served from here instead of re-simulated",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir (force recomputation)",
    )
    _add_plan_cache_arg(parser)


def _engine_from_args(args: argparse.Namespace):
    """Build the execution engine the CLI flags describe."""
    from repro.exec import ExecutionEngine, ResultCache

    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    return ExecutionEngine(jobs=args.jobs, cache=cache)


def _fail_on_violations(violations: List[str]) -> int:
    if violations:
        print("\nSHAPE VIOLATIONS:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("\nall shape claims hold")
    return 0


def cmd_fig1(args: argparse.Namespace) -> int:
    from repro.eval.fig1 import format_fig1, run_fig1

    rows = run_fig1("googlenet", verify_numerically=True)
    print(format_fig1(rows))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from repro.eval.fig6 import chart_fig6, check_fig6_shape, format_fig6, run_fig6

    rows = run_fig6(
        models=args.models,
        bandwidth_bps=args.bandwidth * 1e6,
        engine=_engine_from_args(args),
    )
    print(format_fig6(rows))
    print()
    print(chart_fig6(rows))
    return _fail_on_violations(check_fig6_shape(rows))


def cmd_fig7(args: argparse.Namespace) -> int:
    from repro.eval.fig7 import check_fig7_shape, format_fig7, run_fig7

    bars = run_fig7(
        models=args.models,
        bandwidth_bps=args.bandwidth * 1e6,
        engine=_engine_from_args(args),
    )
    print(format_fig7(bars))
    return _fail_on_violations(check_fig7_shape(bars))


def cmd_fig8(args: argparse.Namespace) -> int:
    from repro.eval.fig8 import check_fig8_shape, format_fig8, run_fig8

    points = run_fig8(
        models=args.models,
        bandwidth_bps=args.bandwidth * 1e6,
        max_points=args.max_points,
        engine=_engine_from_args(args),
    )
    print(format_fig8(points))
    return _fail_on_violations(check_fig8_shape(points))


def cmd_fig_accuracy(args: argparse.Namespace) -> int:
    from repro.eval.fig_accuracy import (
        check_fig_accuracy_shape,
        format_fig_accuracy,
        run_fig_accuracy,
    )

    points = run_fig_accuracy(
        models=args.models,
        bandwidths_mbps=args.bandwidths,
        engine=_engine_from_args(args),
    )
    print(format_fig_accuracy(points))
    return _fail_on_violations(check_fig_accuracy_shape(points))


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.eval.table1 import check_table1_shape, format_table1, run_table1

    rows = run_table1(
        models=args.models,
        bandwidth_bps=args.bandwidth * 1e6,
        engine=_engine_from_args(args),
    )
    print(format_table1(rows))
    return _fail_on_violations(check_table1_shape(rows))


def cmd_ablation(args: argparse.Namespace) -> int:
    from repro.exec import Task

    engine = _engine_from_args(args)
    [outcome] = engine.run(
        [
            Task.make(
                f"ablation/{args.which}",
                "repro.eval.ablations.study_report",
                {"which": args.which},
            )
        ]
    )
    print(outcome.payload)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.eval.campaign import run_campaign, write_report

    result = run_campaign(
        quick=args.quick,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        include_timings=args.timings,
    )
    stats = result.engine_stats
    if args.out:
        write_report(args.out, result)
        print(
            f"report written to {args.out} ({result.wall_seconds:.1f}s, "
            f"jobs={stats.jobs}, {stats.cache_hits}/{len(stats.tasks)} "
            "sections cached)"
        )
    else:
        print(result.report_markdown)
    for task_stats in stats.tasks:
        cached = " (cached)" if task_stats.cached else ""
        print(f"  {task_stats.key:28s} {task_stats.wall_seconds:7.2f}s{cached}")
    print(
        f"  {'total wall':28s} {result.wall_seconds:7.2f}s "
        f"(compute {stats.compute_seconds:.2f}s, jobs={stats.jobs})"
    )
    if not result.all_claims_hold:
        flat = [item for items in result.violations.values() for item in items]
        return _fail_on_violations(flat)
    print("all shape claims hold")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.eval.scenarios import Testbed

    result = Testbed().run_offload("googlenet", wait_for_ack=True)
    print(f"GoogLeNet offloaded inference: {result.total_seconds:.2f} s "
          f"(correct: {result.correct})")
    for phase, seconds in result.phases.as_dict().items():
        if seconds > 0:
            print(f"  {phase:28s} {seconds:7.3f} s")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run a multi-edge fleet scenario and print its report."""
    from repro.fleet import FleetScenario, default_fleet

    tenants = list(args.tenants) if args.tenants else None
    mode = "offload"
    split_index = None
    if tenants and any(":" in spec for spec in tenants):
        mode = "offload-partial"
    scenario = FleetScenario(
        model_name=args.model,
        edges=default_fleet(
            args.edges,
            skew=args.skew,
            memory_budget_bytes=args.edge_memory_budget,
        ),
        policy=args.policy,
        sessions=args.sessions,
        requests_per_session=args.requests,
        arrivals=args.arrivals,
        arrival_rate_per_s=args.rate,
        mode=mode,
        split_index=split_index,
        seed=args.seed,
        reply_timeout=args.reply_timeout,
        tenants=tenants,
        prewarm=args.prewarm,
    )
    for spec in args.kill or []:
        parts = spec.split("@")
        if len(parts) != 2:
            print(f"error: --kill wants EDGE@SECONDS, got {spec!r}",
                  file=sys.stderr)
            return 2
        name, rest = parts
        revive = None
        if ":" in rest:
            at_str, revive_str = rest.split(":", 1)
            revive = float(revive_str)
        else:
            at_str = rest
        scenario.inject_kill(name, float(at_str), revive_at_seconds=revive)
    report = scenario.run()
    text = report.render_markdown()
    print(text)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"error: cannot write report to {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"report written to {args.out}")
    if not report.all_correct:
        print("\nSHAPE VIOLATION: some fleet results were incorrect",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a fleet scenario with continuous batching on every edge."""
    from repro.fleet import FleetScenario, default_fleet
    from repro.serve import ServingConfig

    config = ServingConfig(
        max_batch=args.max_batch,
        batch_timeout_s=args.batch_timeout,
        deadline_s=args.deadline,
        former=args.former,
    )
    scenario = FleetScenario(
        model_name=args.model,
        edges=default_fleet(
            args.edges,
            skew=args.skew,
            memory_budget_bytes=args.edge_memory_budget,
        ),
        policy=args.policy,
        sessions=args.sessions,
        requests_per_session=args.requests,
        arrivals=args.arrivals,
        arrival_rate_per_s=args.rate,
        mean_think_seconds=args.think,
        mode="offload-partial",
        split_index=args.split_index,
        seed=args.seed,
        reply_timeout=args.reply_timeout,
        serving=config,
    )
    for spec in args.kill or []:
        parts = spec.split("@")
        if len(parts) != 2:
            print(f"error: --kill wants EDGE@SECONDS, got {spec!r}",
                  file=sys.stderr)
            return 2
        name, rest = parts
        revive = None
        if ":" in rest:
            at_str, revive_str = rest.split(":", 1)
            revive = float(revive_str)
        else:
            at_str = rest
        scenario.inject_kill(name, float(at_str), revive_at_seconds=revive)
    report = scenario.run()
    text = report.render_markdown()
    print(text)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"error: cannot write report to {args.out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"report written to {args.out}")
    if not report.all_correct:
        print("\nSHAPE VIOLATION: some serving results were incorrect",
              file=sys.stderr)
        return 1
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run one instrumented offload session and print its telemetry."""
    from repro.eval.scenarios import Testbed
    from repro.eval.traces import write_span_trace
    from repro.obs import to_json, to_prometheus_text

    from repro.eval.scenarios import build_paper_model
    from repro.nn import backend as backend_module
    from repro.nn import plan as plan_module

    testbed = Testbed()
    testbed.run_offload(args.model, wait_for_ack=True)
    registry = testbed.sim.metrics
    backend_module.record_backend_metrics(registry)
    print(
        f"kernel backend: {backend_module.active_backend_name()}",
        file=sys.stderr,
    )
    if plan_module.optimization_enabled():
        network = build_paper_model(args.model).network
        network.plan_for().record_metrics(registry)
        print(network.plan_for().describe_text(), file=sys.stderr)
    from repro.exec import cache as exec_cache

    plan_dir = exec_cache.plan_cache_dir()
    if plan_dir is not None:
        exec_cache.record_plan_cache_metrics(registry)
        stats = exec_cache.plan_cache_stats()
        print(
            f"plan cache {plan_dir}: {stats.hits} hits, {stats.misses} "
            f"misses, {stats.compile_seconds * 1e3:.1f} ms compiling",
            file=sys.stderr,
        )
    else:
        print("plan cache: disabled", file=sys.stderr)
    if args.format == "json":
        print(to_json(registry))
    else:
        print(to_prometheus_text(registry), end="")
    if args.trace_out:
        write_span_trace(args.trace_out, testbed.sim.spans)
        print(f"# span trace written to {args.trace_out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Computation Offloading for ML Web Apps in the "
        "Edge Server Environment' (ICDCS 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="GoogLeNet architecture walk")
    p.set_defaults(func=cmd_fig1)

    for name, func in (("fig6", cmd_fig6), ("fig7", cmd_fig7), ("table1", cmd_table1)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_models_arg(p)
        _add_bandwidth_arg(p)
        _add_metrics_arg(p)
        _add_exec_args(p)
        _add_optimize_arg(p)
        _add_backend_arg(p)
        p.set_defaults(func=func)

    p = sub.add_parser("fig8", help="partial-inference sweep")
    _add_models_arg(p)
    _add_bandwidth_arg(p)
    _add_metrics_arg(p)
    _add_exec_args(p)
    _add_optimize_arg(p)
    _add_backend_arg(p)
    p.add_argument("--max-points", type=int, default=None)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser(
        "fig-accuracy",
        help="accuracy-vs-deadline sweep for multi-exit models",
    )
    from repro.nn.zoo import EXIT_MODELS

    p.add_argument(
        "--models",
        nargs="+",
        default=list(EXIT_MODELS),
        choices=list(EXIT_MODELS),
        help="multi-exit models to sweep (default: all)",
    )
    p.add_argument(
        "--bandwidths",
        nargs="+",
        type=float,
        default=[5.0, 30.0, 100.0],
        metavar="MBPS",
        help="bandwidths to sweep, in Mbps (default: 5 30 100)",
    )
    _add_metrics_arg(p)
    _add_exec_args(p)
    _add_optimize_arg(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_fig_accuracy)

    p = sub.add_parser("ablation", help="run one ablation study")
    from repro.eval.ablations import STUDY_NAMES

    p.add_argument("which", choices=STUDY_NAMES)
    _add_metrics_arg(p)
    _add_exec_args(p)
    _add_optimize_arg(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("demo", help="one offloaded GoogLeNet inference")
    _add_metrics_arg(p)
    _add_optimize_arg(p)
    _add_backend_arg(p)
    _add_plan_cache_arg(p)
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser(
        "metrics", help="run one offload session and print its telemetry"
    )
    p.add_argument(
        "--model",
        default="smallnet",
        choices=list(PAPER_MODELS) + ["smallnet", "tinynet"],
        help="benchmark model to run (default: smallnet, fast)",
    )
    p.add_argument(
        "--format",
        default="prometheus",
        choices=("prometheus", "json"),
        help="exposition format to print",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also write the session's span trace (Chrome Trace Event JSON)",
    )
    _add_optimize_arg(p)
    _add_backend_arg(p)
    _add_plan_cache_arg(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "fleet", help="multi-edge fleet with load-aware offload scheduling"
    )
    from repro.fleet import POLICY_NAMES

    p.add_argument(
        "--model",
        default="smallnet",
        choices=list(PAPER_MODELS) + ["smallnet", "tinynet"],
        help="model every session offloads (default: smallnet, fast)",
    )
    p.add_argument(
        "--policy",
        default="queue-aware",
        choices=list(POLICY_NAMES),
        help="edge-selection policy (default: queue-aware)",
    )
    p.add_argument("--edges", type=int, default=3, help="fleet size")
    p.add_argument(
        "--skew", type=float, default=2.0,
        help="speed ratio between fastest and slowest edge (default: 2)",
    )
    p.add_argument("--sessions", type=int, default=40, help="user sessions")
    p.add_argument(
        "--requests", type=int, default=2, help="inferences per session"
    )
    p.add_argument(
        "--arrivals", default="poisson", choices=("poisson", "trace"),
        help="session arrival / think-time process",
    )
    p.add_argument(
        "--rate", type=float, default=8.0,
        help="session arrival rate per second (default: 8)",
    )
    p.add_argument("--seed", type=int, default=0, help="replay seed")
    p.add_argument(
        "--reply-timeout", type=float, default=5.0,
        help="seconds before a missing reply marks the edge dead",
    )
    p.add_argument(
        "--edge-memory-budget", type=int, default=None, metavar="BYTES",
        help="per-edge model-store budget; LRU-evicts rear halves above it "
        "(default: unlimited)",
    )
    p.add_argument(
        "--tenants", nargs="+", default=None, metavar="MODEL[:SPLIT]",
        help="round-robin sessions over several models, e.g. "
        "'smallnet:2 smallnet:3' (a :SPLIT switches the run to "
        "offload-partial and uploads rear halves)",
    )
    p.add_argument(
        "--prewarm", action="store_true",
        help="prime every edge's store with all tenant models before t=0 "
        "(warm-fleet baseline)",
    )
    p.add_argument(
        "--kill", action="append", metavar="EDGE@SECONDS[:REVIVE]",
        help="inject an edge death (repeatable), e.g. edge-0@1.5 or "
        "edge-0@1.5:4.0 to revive at t=4",
    )
    p.add_argument("--out", default=None, help="also write the report here")
    _add_metrics_arg(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "serve",
        help="fleet scenario with a continuous-batching serving loop on "
        "every edge (always offload-partial)",
    )
    from repro.serve import FORMER_NAMES

    p.add_argument(
        "--model",
        default="resnet-mini",
        choices=list(PAPER_MODELS) + ["smallnet", "tinynet", "resnet-mini"],
        help="model every session offloads (default: resnet-mini, whose "
        "rear half dominates server time — where batching pays)",
    )
    p.add_argument(
        "--policy",
        default="queue-aware",
        choices=list(POLICY_NAMES),
        help="edge-selection policy (default: queue-aware)",
    )
    p.add_argument("--edges", type=int, default=1, help="fleet size")
    p.add_argument(
        "--skew", type=float, default=2.0,
        help="speed ratio between fastest and slowest edge (default: 2)",
    )
    p.add_argument("--sessions", type=int, default=32, help="user sessions")
    p.add_argument(
        "--requests", type=int, default=2, help="inferences per session"
    )
    p.add_argument(
        "--arrivals", default="poisson", choices=("poisson", "trace"),
        help="session arrival / think-time process",
    )
    p.add_argument(
        "--rate", type=float, default=64.0,
        help="session arrival rate per second (default: 64 — batching needs "
        "a saturated server)",
    )
    p.add_argument(
        "--think", type=float, default=0.05,
        help="mean think seconds between a session's requests",
    )
    p.add_argument(
        "--split-index", type=int, default=0,
        help="partition layer: everything after it runs on the server "
        "(default 0, the rear-heavy split)",
    )
    p.add_argument("--seed", type=int, default=0, help="replay seed")
    p.add_argument(
        "--reply-timeout", type=float, default=60.0,
        help="seconds before a missing reply marks the edge dead",
    )
    p.add_argument(
        "--edge-memory-budget", type=int, default=None, metavar="BYTES",
        help="per-edge model-store budget; LRU-evicts rear halves above it "
        "(default: unlimited)",
    )
    p.add_argument(
        "--max-batch", type=int, default=8,
        help="most rear-half inferences coalesced into one forward",
    )
    p.add_argument(
        "--batch-timeout", type=float, default=0.02,
        help="longest a queued request waits for batch-mates (seconds)",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-request completion deadline for the deadline former",
    )
    p.add_argument(
        "--former", default="size-timeout", choices=list(FORMER_NAMES),
        help="batch-forming policy",
    )
    p.add_argument(
        "--kill", action="append", metavar="EDGE@SECONDS[:REVIVE]",
        help="inject an edge death (repeatable)",
    )
    p.add_argument("--out", default=None, help="also write the report here")
    _add_metrics_arg(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "campaign", help="regenerate every artifact into one report"
    )
    p.add_argument("--out", default=None, help="write markdown report here")
    p.add_argument(
        "--quick", action="store_true", help="one model, truncated sweeps"
    )
    p.add_argument(
        "--timings",
        action="store_true",
        help="embed the wall-clock timing table in the report (makes the "
        "report non-deterministic across runs)",
    )
    _add_metrics_arg(p)
    _add_exec_args(p)
    _add_optimize_arg(p)
    _add_backend_arg(p)
    p.set_defaults(func=cmd_campaign)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_optimize_flag(args)
    _apply_backend_flag(args)
    _apply_plan_cache_flag(args)
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return args.func(args)

    from repro.obs import MetricsRegistry, collect_metrics, write_metrics

    with collect_metrics() as registries:
        code = args.func(args)
    try:
        write_metrics(metrics_out, MetricsRegistry.merged(registries))
    except OSError as exc:
        print(f"error: cannot write metrics to {metrics_out}: {exc}",
              file=sys.stderr)
        return 1
    print(f"metrics written to {metrics_out} ({len(registries)} runs merged)")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
