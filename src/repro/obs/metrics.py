"""Sim-clock-aware metrics: counters, gauges, histograms, labeled series.

A :class:`MetricsRegistry` is the measurable surface of one simulation run.
Every :class:`~repro.sim.kernel.Simulator` owns one (``sim.metrics``) and the
instrumented subsystems — the event loop, links, devices, the edge server,
the client agent, sessions — record into it as virtual time advances:

>>> registry = MetricsRegistry()
>>> registry.counter("requests_total", server="edge").inc()
>>> registry.value("requests_total", server="edge")
1.0

Three metric kinds, modelled on Prometheus:

:class:`Counter`
    a monotonically increasing total (events dispatched, bytes sent),
:class:`Gauge`
    a value that goes up and down (sessions cached, queue depth),
:class:`Histogram`
    a distribution of observations (phase durations, queue waits) with
    exact quantiles and lossless merging.

Series are *labeled*: ``counter("net_bytes_sent_total", link="a->b")`` and
the same name with ``link="b->a"`` are distinct series in one family.
Registries from independent runs merge losslessly
(:meth:`MetricsRegistry.merge`), which is how a campaign aggregates the
telemetry of every testbed it builds; :func:`collect_metrics` captures the
registries of all simulators created inside a ``with`` block.

Timers use the registry's *clock* — the owning simulator's virtual clock,
never wall time — so every duration metric is deterministic under a fixed
seed.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: metric kinds, mirroring the Prometheus exposition types
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class MetricsError(RuntimeError):
    """Raised on inconsistent metric registration (name/kind conflicts)."""


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = COUNTER

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease ({amount!r})")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}, {self.value})"


class Gauge:
    """A value that can go up and down."""

    kind = GAUGE

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge_from(self, other: "Gauge") -> None:
        # Gauges describe instantaneous state; merging runs sums them
        # (e.g. total cached sessions across servers).
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{dict(self.labels)}, {self.value})"


class Histogram:
    """An exact distribution of observations.

    Observations are kept losslessly (simulation runs are bounded, and the
    tests need exact quantiles), so ``merge`` is concatenation and
    ``quantile`` is the nearest-rank statistic on the sorted sample —
    ``quantile(0.0)`` is the minimum and ``quantile(1.0)`` the maximum.
    Prometheus-style cumulative buckets are derived at export time.
    """

    kind = HISTOGRAM

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._sorted: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        bisect.insort(self._sorted, float(value))
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def observations(self) -> List[float]:
        """All observations, sorted ascending."""
        return list(self._sorted)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; raises on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q!r}")
        if not self._sorted:
            raise MetricsError(f"histogram {self.name} has no observations")
        rank = min(len(self._sorted) - 1, int(q * len(self._sorted)))
        return self._sorted[rank]

    def mean(self) -> float:
        return self.sum / len(self._sorted) if self._sorted else 0.0

    def bucket_counts(self, boundaries: Sequence[float]) -> List[int]:
        """Cumulative counts of observations <= each boundary."""
        return [bisect.bisect_right(self._sorted, bound) for bound in boundaries]

    def merge_from(self, other: "Histogram") -> None:
        for value in other._sorted:
            bisect.insort(self._sorted, value)
        self.sum += other.sum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name}{dict(self.labels)}, "
            f"n={self.count}, sum={self.sum:.6g})"
        )


_METRIC_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """Labeled metric families on a (virtual) clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Instrumented simulators pass their virtual clock; the default
        always returns ``0.0`` so a registry never touches wall time.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._families: Dict[str, str] = {}  # name -> kind
        self._help: Dict[str, str] = {}
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}

    def __getstate__(self) -> Dict[str, Any]:
        # Clocks are process-local callables (often a bound simulator
        # method); a registry that crosses a process boundary carries its
        # recorded data, not the clock.
        state = self.__dict__.copy()
        state["clock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        if self.__dict__.get("clock") is None:
            self.clock = lambda: 0.0

    # -- registration -------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, help: str, labels: Dict) -> Any:
        registered = self._families.get(name)
        if registered is None:
            self._families[name] = kind
            if help:
                self._help[name] = help
        elif registered != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {registered}, not {kind}"
            )
        elif help and name not in self._help:
            self._help[name] = help
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _METRIC_TYPES[kind](name, key[1])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get_or_create(COUNTER, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get_or_create(GAUGE, name, help, labels)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        return self._get_or_create(HISTOGRAM, name, help, labels)

    @contextmanager
    def timer(self, name: str, help: str = "", **labels: Any):
        """Observe the clock duration of a ``with`` block into a histogram."""
        histogram = self.histogram(name, help=help, **labels)
        started = self.clock()
        yield histogram
        histogram.observe(self.clock() - started)

    # -- reading ------------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The metric for exact name+labels, or None if never touched."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value (0.0 if absent); histogram sum."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value

    def series(self, name: str) -> List[Any]:
        """Every labeled series of one family."""
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def families(self) -> Dict[str, str]:
        """Mapping of family name -> kind."""
        return dict(self._families)

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def __iter__(self) -> Iterator[Any]:
        """All metrics, ordered by (name, labels) for stable exports."""
        return iter(metric for _, metric in sorted(self._metrics.items()))

    def __len__(self) -> int:
        return len(self._metrics)

    # -- aggregation --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (lossless); returns self."""
        for name, kind in other._families.items():
            registered = self._families.setdefault(name, kind)
            if registered != kind:
                raise MetricsError(
                    f"cannot merge metric {name!r}: {registered} vs {kind}"
                )
            if name in other._help and name not in self._help:
                self._help[name] = other._help[name]
        for (name, labels), metric in other._metrics.items():
            mine = self._metrics.get((name, labels))
            if mine is None:
                mine = _METRIC_TYPES[metric.kind](name, labels)
                self._metrics[(name, labels)] = mine
            mine.merge_from(metric)
        return self

    @classmethod
    def merged(cls, registries: Sequence["MetricsRegistry"]) -> "MetricsRegistry":
        """A fresh registry holding the sum of all the given ones."""
        result = cls()
        for registry in registries:
            result.merge(registry)
        return result

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data dump (the JSON exporter's document body)."""
        families: Dict[str, Any] = {}
        for metric in self:
            family = families.setdefault(
                metric.name,
                {
                    "kind": metric.kind,
                    "help": self.help_for(metric.name),
                    "series": [],
                },
            )
            entry: Dict[str, Any] = {"labels": dict(metric.labels)}
            if isinstance(metric, Histogram):
                entry.update(
                    count=metric.count,
                    sum=metric.sum,
                    min=metric.quantile(0.0) if metric.count else None,
                    max=metric.quantile(1.0) if metric.count else None,
                    mean=metric.mean(),
                    observations=metric.observations,
                )
            else:
                entry["value"] = metric.value
            family["series"].append(entry)
        return families


# -- cross-run collection ----------------------------------------------------
#
# `collect_metrics()` captures every registry created while its block is
# active (each Simulator builds one in __init__).  Collectors nest: an
# inner campaign and an outer CLI `--metrics-out` both see the same runs.

_collector_stack: List[Tuple[List[MetricsRegistry], bool]] = []


def announce_registry(registry: MetricsRegistry) -> None:
    """Offer a newly created registry to active collectors.

    Announcement walks from the innermost collector outward and stops
    after the first *shielding* collector — see :func:`collect_metrics`.
    """
    for bucket, shield in reversed(_collector_stack):
        bucket.append(registry)
        if shield:
            break


@contextmanager
def collect_metrics(shield: bool = False) -> Iterator[List[MetricsRegistry]]:
    """Collect the registries of all simulators created in this block.

    >>> with collect_metrics() as registries:
    ...     pass  # build simulators, run sessions ...
    >>> merged = MetricsRegistry.merged(registries)

    With ``shield=True`` the collector also *hides* the registries from
    any enclosing collectors.  The execution engine uses this to capture
    each task's telemetry exactly once and re-announce it afterwards, so
    a task produces the same announcements whether it ran inline, in a
    worker process, or straight from the result cache.
    """
    bucket: List[MetricsRegistry] = []
    entry = (bucket, shield)
    _collector_stack.append(entry)
    try:
        yield bucket
    finally:
        _collector_stack.remove(entry)
