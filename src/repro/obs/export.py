"""Registry exporters: Prometheus text exposition and JSON.

``to_prometheus_text`` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
one ``name{labels} value`` sample per line; histograms as cumulative
``_bucket`` / ``_sum`` / ``_count`` series).  ``parse_prometheus_text``
reads that format back into plain data so tests can assert the export
round-trips and smoke scripts can validate a scrape file without a real
Prometheus server.

``to_json`` / ``write_metrics`` serialize the registry snapshot; the file
extension picks the format (``.json`` vs anything else → Prometheus text).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Sequence, Tuple

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    Histogram,
    MetricsRegistry,
)

#: default histogram bucket boundaries (seconds-flavoured, Prometheus style)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Sequence[Tuple[str, str]], extra: str = "") -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def to_prometheus_text(
    registry: MetricsRegistry, buckets: Sequence[float] = DEFAULT_BUCKETS
) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, kind in sorted(registry.families().items()):
        help_text = registry.help_for(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in registry.series(name):
            labels = metric.labels
            if kind == HISTOGRAM:
                counts = metric.bucket_counts(buckets)
                for bound, count in zip(buckets, counts):
                    le = _format_labels(labels, f'le="{_format_value(bound)}"')
                    lines.append(f"{name}_bucket{le} {count}")
                inf = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {metric.count}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(text: str) -> Dict:
    """Parse a Prometheus exposition into ``{"types": ..., "samples": ...}``.

    ``types`` maps family name -> declared kind; ``samples`` maps
    ``(sample_name, (sorted label pairs))`` -> float value.  Malformed
    sample lines raise ``ValueError`` — this parser is the smoke test for
    the exporter, so silent tolerance would defeat its purpose.
    """
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        labels = tuple(
            sorted(
                (key, value.replace(r"\"", '"').replace(r"\\", "\\"))
                for key, value in _LABEL_RE.findall(match.group("labels") or "")
            )
        )
        raw = match.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        samples[(match.group("name"), labels)] = value
    return {"types": types, "samples": samples}


def to_json(registry: MetricsRegistry, indent: int = 1) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps({"metrics": registry.snapshot()}, indent=indent)


def write_metrics(path: str, registry: MetricsRegistry) -> str:
    """Write the registry to ``path``; the extension picks the format."""
    if path.endswith(".json"):
        text = to_json(registry)
    else:
        text = to_prometheus_text(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path
