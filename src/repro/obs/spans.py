"""Lightweight span tracing on the virtual clock.

A :class:`Span` is one named interval on a *track* (client CPU, network,
server CPU, ...).  A :class:`SpanRecorder` collects finished spans; every
:class:`~repro.sim.kernel.Simulator` owns one (``sim.spans``) so sessions
and agents can emit their phase timeline as first-class data instead of
ad-hoc result fields.  The recorder generalizes what
:mod:`repro.eval.traces` reconstructs from a
:class:`~repro.core.session.SessionResult`: the same Chrome Trace Event
JSON can be produced directly from recorded spans via
:meth:`SpanRecorder.to_chrome_trace`.

Spans are plain data — ``(name, track, start, end, category, attrs)`` —
and all times are virtual seconds, so traces are deterministic under a
fixed seed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence


@dataclass
class Span:
    """One finished interval on the virtual timeline."""

    name: str
    track: str
    start: float
    end: float
    category: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanRecorder:
    """Collects finished spans in emission order."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = clock or (lambda: 0.0)
        self._spans: List[Span] = []

    # -- recording ----------------------------------------------------------
    def add(
        self,
        name: str,
        start: float,
        end: float,
        track: str = "main",
        category: str = "",
        **attrs: Any,
    ) -> Span:
        """Record a span with explicit endpoints (both in virtual seconds)."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts ({start}..{end})")
        span = Span(name, track, start, end, category, dict(attrs))
        self._spans.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, track: str = "main", category: str = "", **attrs: Any
    ) -> Iterator[Dict[str, Any]]:
        """Record the clock interval of a ``with`` block.

        Yields the attrs dict so the body can attach results:

        >>> recorder = SpanRecorder()
        >>> with recorder.span("restore", track="server") as attrs:
        ...     attrs["bytes"] = 1024
        """
        started = self.clock()
        shared_attrs = dict(attrs)
        try:
            yield shared_attrs
        finally:
            self.add(name, started, self.clock(), track=track,
                     category=category, **shared_attrs)

    # -- reading ------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def by_track(self, track: str) -> List[Span]:
        return [span for span in self._spans if span.track == track]

    def by_category(self, category: str) -> List[Span]:
        return [span for span in self._spans if span.category == category]

    def total_seconds(self, category: str = "") -> float:
        """Summed duration of all spans (optionally of one category)."""
        spans = self.by_category(category) if category else self._spans
        return sum(span.duration for span in spans)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    # -- export -------------------------------------------------------------
    def to_chrome_trace(self, pid: int = 1, process_name: str = "") -> Dict:
        """A Chrome Trace Event document of every recorded span."""
        return spans_to_trace(self._spans, pid=pid, process_name=process_name)


def spans_to_events(
    spans: Sequence[Span], pid: int = 1, process_name: str = ""
) -> List[Dict]:
    """Chrome Trace Event list ('M' metadata + complete 'X' spans, µs).

    Tracks become threads, numbered in first-seen order so the exported
    layout is stable for a deterministic simulation.
    """
    events: List[Dict] = []
    if process_name:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": process_name}}
        )
    track_ids: Dict[str, int] = {}
    for span in spans:
        if span.track not in track_ids:
            track_ids[span.track] = len(track_ids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": track_ids[span.track],
                    "args": {"name": span.track},
                }
            )
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category or span.track,
            "ph": "X",
            "pid": pid,
            "tid": track_ids[span.track],
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "args": {"seconds": span.duration, **span.attrs},
        }
        events.append(event)
    return events


def spans_to_trace(
    spans: Sequence[Span], pid: int = 1, process_name: str = ""
) -> Dict:
    """A full Chrome trace document for a span list."""
    return {
        "traceEvents": spans_to_events(spans, pid=pid, process_name=process_name),
        "displayTimeUnit": "ms",
    }
