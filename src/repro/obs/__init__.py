"""Observability: metrics registry, span tracing, exporters.

This package is the measurement backbone of the reproduction.  The paper's
entire evaluation is about where time and bytes go (Fig. 6 execution
times, Fig. 7 phase breakdowns, Fig. 8 partial-inference trade-offs);
:mod:`repro.obs` turns those quantities into first-class, queryable data:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  exact histograms on the *virtual* clock, labeled and mergeable across
  runs (``sim.metrics`` on every simulator);
* :class:`~repro.obs.spans.SpanRecorder` — lightweight span tracing
  (``sim.spans``), exportable as Chrome Trace Event JSON;
* :mod:`repro.obs.export` — Prometheus text and JSON exporters plus the
  parser the test-suite and smoke scripts use to validate scrapes.

See ``docs/OBSERVABILITY.md`` for the metric name catalogue.
"""

from repro.obs.export import (
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    announce_registry,
    collect_metrics,
)
from repro.obs.spans import Span, SpanRecorder, spans_to_events, spans_to_trace

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "announce_registry",
    "collect_metrics",
    "parse_prometheus_text",
    "spans_to_events",
    "spans_to_trace",
    "to_json",
    "to_prometheus_text",
    "write_metrics",
]
